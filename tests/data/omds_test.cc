#include "data/omds.h"

#include <cstdio>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/rng.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace omnimatch {
namespace data {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Both backends must agree record for record AND index for index — the
/// out-of-core path's core contract (DESIGN.md "Out-of-core data path").
void ExpectDatasetsIdentical(const DomainDataset& a, const DomainDataset& b) {
  ASSERT_EQ(a.num_reviews(), b.num_reviews());
  for (size_t i = 0; i < a.num_reviews(); ++i) {
    EXPECT_EQ(a.ReviewUser(i), b.ReviewUser(i)) << "record " << i;
    EXPECT_EQ(a.ReviewItem(i), b.ReviewItem(i)) << "record " << i;
    EXPECT_EQ(a.ReviewRating(i), b.ReviewRating(i)) << "record " << i;
    EXPECT_EQ(a.ReviewSummary(i), b.ReviewSummary(i)) << "record " << i;
    EXPECT_EQ(a.ReviewFullText(i), b.ReviewFullText(i)) << "record " << i;
  }
  ASSERT_EQ(a.users(), b.users());
  ASSERT_EQ(a.items(), b.items());
  for (int u : a.users()) {
    EXPECT_EQ(a.RecordsOfUser(u), b.RecordsOfUser(u)) << "user " << u;
  }
  for (int item : a.items()) {
    EXPECT_EQ(a.RecordsOfItem(item), b.RecordsOfItem(item)) << "item " << item;
  }
  const CsrIndex<long long>& ia = a.item_rating_index();
  const CsrIndex<long long>& ib = b.item_rating_index();
  EXPECT_EQ(ia.keys(), ib.keys());
  EXPECT_EQ(ia.offsets(), ib.offsets());
  EXPECT_EQ(ia.values(), ib.values());
}

TEST(OmdsTest, MappedDatasetIdenticalToTsvLoaderOnRandomWorlds) {
  Rng trial_rng(404);
  for (int trial = 0; trial < 3; ++trial) {
    SyntheticConfig config;
    config.num_users = 40 + static_cast<int>(trial_rng.UniformU32(60));
    config.items_per_domain = 20 + static_cast<int>(trial_rng.UniformU32(40));
    config.mean_reviews_per_user = 4.0;
    config.min_reviews_per_user = 1;
    config.seed = 7000 + static_cast<uint64_t>(trial);
    SyntheticWorld world(config, {"Books", "Movies"});
    const DomainDataset& mem = world.domain("Books");

    std::string tsv = TempPath("omds_prop.tsv");
    std::string omds = TempPath("omds_prop.omds");
    ASSERT_TRUE(SaveDomainTsv(mem, tsv).ok());
    ASSERT_TRUE(WriteDomainOmds(mem, omds).ok());

    Result<DomainDataset> from_tsv = LoadDomainTsv(tsv, "Books");
    ASSERT_TRUE(from_tsv.ok()) << from_tsv.status().ToString();
    Result<DomainDataset> mapped = LoadDomainOmds(omds, "Books");
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped.value().is_mapped());
    EXPECT_FALSE(from_tsv.value().is_mapped());

    ExpectDatasetsIdentical(from_tsv.value(), mapped.value());
    ExpectDatasetsIdentical(mem, mapped.value());
  }
}

TEST(OmdsTest, EmptyDomainRoundTrips) {
  DomainDataset empty("Empty");
  empty.BuildIndices();
  std::string path = TempPath("omds_empty.omds");
  ASSERT_TRUE(WriteDomainOmds(empty, path).ok());
  Result<DomainDataset> loaded = LoadDomainOmds(path, "Empty");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_reviews(), 0u);
  EXPECT_TRUE(loaded.value().users().empty());
}

TEST(OmdsTest, MappedDatasetSavesBackToTsv) {
  SyntheticConfig config;
  config.num_users = 30;
  config.items_per_domain = 20;
  config.seed = 11;
  SyntheticWorld world(config, {"Books", "Movies"});
  std::string omds = TempPath("omds_save.omds");
  ASSERT_TRUE(WriteDomainOmds(world.domain("Movies"), omds).ok());
  Result<DomainDataset> mapped = LoadDomainOmds(omds, "Movies");
  ASSERT_TRUE(mapped.ok());

  std::string tsv = TempPath("omds_save.tsv");
  ASSERT_TRUE(SaveDomainTsv(mapped.value(), tsv).ok());
  Result<DomainDataset> reloaded = LoadDomainTsv(tsv, "Movies");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectDatasetsIdentical(mapped.value(), reloaded.value());
}

class OmdsCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_users = 25;
    config.items_per_domain = 15;
    config.seed = 33;
    SyntheticWorld world(config, {"Books", "Movies"});
    path_ = TempPath("omds_corrupt.omds");
    ASSERT_TRUE(WriteDomainOmds(world.domain("Books"), path_).ok());
    Result<std::string> bytes = ReadFileToString(path_);
    ASSERT_TRUE(bytes.ok());
    bytes_ = std::move(bytes).value();
    ASSERT_GT(bytes_.size(), 200u);
  }

  /// Writes a mutated copy and expects Open to reject it with `what`.
  void ExpectRejected(std::string mutated, const std::string& what) {
    std::string path = TempPath("omds_corrupt_mut.omds");
    ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());
    Result<std::shared_ptr<const OmdsFile>> opened = OmdsFile::Open(path);
    ASSERT_FALSE(opened.ok()) << "corruption was not detected: " << what;
    EXPECT_NE(opened.status().ToString().find(what), std::string::npos)
        << opened.status().ToString();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(OmdsCorruptionTest, RejectsBadMagic) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  ExpectRejected(mutated, "magic");
}

TEST_F(OmdsCorruptionTest, RejectsTruncation) {
  ExpectRejected(bytes_.substr(0, bytes_.size() / 2), "");
  ExpectRejected(bytes_.substr(0, 10), "shorter than the header");
}

TEST_F(OmdsCorruptionTest, RejectsHeaderBitFlip) {
  std::string mutated = bytes_;
  mutated[16] ^= 0x40;  // num_records field
  ExpectRejected(mutated, "header CRC");
}

TEST_F(OmdsCorruptionTest, RejectsTextBitFlip) {
  std::string mutated = bytes_;
  mutated[80] ^= 0x01;  // inside the text blob
  ExpectRejected(mutated, "text section CRC");
}

TEST_F(OmdsCorruptionTest, RejectsMetaBitFlip) {
  std::string mutated = bytes_;
  mutated[mutated.size() - 20] ^= 0x01;  // inside the meta table
  ExpectRejected(mutated, "meta table CRC");
}

TEST_F(OmdsCorruptionTest, RejectsMissingFile) {
  Result<std::shared_ptr<const OmdsFile>> opened =
      OmdsFile::Open(TempPath("does_not_exist.omds"));
  EXPECT_FALSE(opened.ok());
}

TEST(OmdsWriterTest, RejectsInvalidRecords) {
  OmdsWriter writer;
  ASSERT_TRUE(writer.Open(TempPath("omds_invalid.omds")).ok());
  EXPECT_FALSE(writer.Add(-1, 0, 3.0f, "s", "f").ok());
  EXPECT_FALSE(writer.Add(0, -2, 3.0f, "s", "f").ok());
  EXPECT_FALSE(writer.Add(0, 0, 0.5f, "s", "f").ok());
  EXPECT_TRUE(writer.Add(0, 0, 5.0f, "s", "f").ok());
}

TEST(MemoryMappedFileTest, MapsWholeFile) {
  std::string path = TempPath("mmap_roundtrip.bin");
  std::string payload("omnimatch mmap payload \0 with a nul", 35);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  Result<MemoryMappedFile> mapped = MemoryMappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(std::string_view(mapped.value().data(), mapped.value().size()),
            payload);
}

TEST(MemoryMappedFileTest, MissingFileIsIoError) {
  Result<MemoryMappedFile> mapped =
      MemoryMappedFile::Open(TempPath("mmap_missing.bin"));
  EXPECT_FALSE(mapped.ok());
}

TEST(MemoryMappedFileTest, EmptyFileIsValid) {
  std::string path = TempPath("mmap_empty.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "").ok());
  Result<MemoryMappedFile> mapped = MemoryMappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().size(), 0u);
}

}  // namespace
}  // namespace data
}  // namespace omnimatch
