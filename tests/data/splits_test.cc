#include "data/splits.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace omnimatch {
namespace data {
namespace {

CrossDomainDataset SmallCross() {
  SyntheticConfig config;
  config.num_users = 80;
  config.items_per_domain = 40;
  config.mean_reviews_per_user = 4;
  config.seed = 5;
  SyntheticWorld world(config);
  return world.MakePair("Books", "Movies");
}

TEST(SplitsTest, PartitionIsDisjointAndComplete) {
  CrossDomainDataset cross = SmallCross();
  Rng rng(1);
  ColdStartSplit split = MakeColdStartSplit(cross, &rng);
  std::set<int> all;
  for (int u : split.train_users) all.insert(u);
  for (int u : split.validation_users) all.insert(u);
  for (int u : split.test_users) all.insert(u);
  EXPECT_EQ(all.size(), split.train_users.size() +
                            split.validation_users.size() +
                            split.test_users.size());
  EXPECT_EQ(all.size(), cross.overlapping_users().size());
}

TEST(SplitsTest, PaperProportions) {
  CrossDomainDataset cross = SmallCross();
  Rng rng(2);
  ColdStartSplit split = MakeColdStartSplit(cross, &rng, 0.8);
  size_t total = cross.overlapping_users().size();
  EXPECT_NEAR(static_cast<double>(split.train_users.size()) / total, 0.8,
              0.05);
  // Cold users split in half between validation and test (±1).
  EXPECT_LE(
      std::abs(static_cast<long>(split.validation_users.size()) -
               static_cast<long>(split.test_users.size())),
      1);
}

TEST(SplitsTest, DeterministicGivenSeed) {
  CrossDomainDataset cross = SmallCross();
  Rng rng1(3), rng2(3);
  ColdStartSplit a = MakeColdStartSplit(cross, &rng1);
  ColdStartSplit b = MakeColdStartSplit(cross, &rng2);
  EXPECT_EQ(a.train_users, b.train_users);
  EXPECT_EQ(a.test_users, b.test_users);
}

TEST(SplitsTest, DifferentSeedsDiffer) {
  CrossDomainDataset cross = SmallCross();
  Rng rng1(3), rng2(4);
  ColdStartSplit a = MakeColdStartSplit(cross, &rng1);
  ColdStartSplit b = MakeColdStartSplit(cross, &rng2);
  EXPECT_NE(a.train_users, b.train_users);
}

TEST(SplitsTest, SubsampleKeepsFraction) {
  CrossDomainDataset cross = SmallCross();
  Rng rng(5);
  ColdStartSplit split = MakeColdStartSplit(cross, &rng);
  ColdStartSplit half = SubsampleTrainUsers(split, 0.5, &rng);
  EXPECT_NEAR(static_cast<double>(half.train_users.size()),
              split.train_users.size() * 0.5, 1.0);
  // Subsampled users are a subset of the originals.
  for (int u : half.train_users) {
    EXPECT_TRUE(std::binary_search(split.train_users.begin(),
                                   split.train_users.end(), u));
  }
  // Cold users untouched.
  EXPECT_EQ(half.test_users, split.test_users);
  EXPECT_EQ(half.validation_users, split.validation_users);
}

TEST(SplitsTest, SubsampleFullFractionIsIdentity) {
  CrossDomainDataset cross = SmallCross();
  Rng rng(6);
  ColdStartSplit split = MakeColdStartSplit(cross, &rng);
  ColdStartSplit same = SubsampleTrainUsers(split, 1.0, &rng);
  EXPECT_EQ(same.train_users, split.train_users);
}

TEST(SplitsTest, TargetRecordsOfUsersCollectsAll) {
  CrossDomainDataset cross = SmallCross();
  Rng rng(7);
  ColdStartSplit split = MakeColdStartSplit(cross, &rng);
  std::vector<int> records = TargetRecordsOfUsers(cross, split.test_users);
  size_t expected = 0;
  for (int u : split.test_users) {
    expected += cross.target().RecordsOfUser(u).size();
  }
  EXPECT_EQ(records.size(), expected);
  for (int idx : records) {
    EXPECT_LT(idx, static_cast<int>(cross.target().num_reviews()));
  }
}

// Property sweep: the split respects any train fraction.
class SplitFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionTest, FractionRespected) {
  CrossDomainDataset cross = SmallCross();
  Rng rng(11);
  ColdStartSplit split = MakeColdStartSplit(cross, &rng, GetParam());
  size_t total = cross.overlapping_users().size();
  EXPECT_NEAR(static_cast<double>(split.train_users.size()) / total,
              GetParam(), 0.06);
  EXPECT_GE(split.test_users.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace data
}  // namespace omnimatch
