#include "data/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace omnimatch {
namespace data {
namespace {

SyntheticConfig TinyConfig(uint64_t seed = 42) {
  SyntheticConfig c;
  c.num_users = 60;
  c.items_per_domain = 40;
  c.mean_reviews_per_user = 5;
  c.seed = seed;
  return c;
}

TEST(SyntheticTest, GeneratesAllDomains) {
  SyntheticWorld world(TinyConfig());
  EXPECT_EQ(world.domain_names().size(), 3u);
  for (const auto& name : world.domain_names()) {
    EXPECT_GT(world.domain(name).num_reviews(), 0u);
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticWorld a(TinyConfig(7)), b(TinyConfig(7));
  const auto& ra = a.domain("Books").reviews();
  const auto& rb = b.domain("Books").reviews();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].user_id, rb[i].user_id);
    EXPECT_EQ(ra[i].item_id, rb[i].item_id);
    EXPECT_EQ(ra[i].rating, rb[i].rating);
    EXPECT_EQ(ra[i].summary, rb[i].summary);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticWorld a(TinyConfig(7)), b(TinyConfig(8));
  EXPECT_NE(a.domain("Books").reviews()[0].summary,
            b.domain("Books").reviews()[0].summary);
}

TEST(SyntheticTest, RatingsInRange) {
  SyntheticWorld world(TinyConfig());
  for (const auto& name : world.domain_names()) {
    for (const Review& r : world.domain(name).reviews()) {
      EXPECT_GE(r.rating, 1.0f);
      EXPECT_LE(r.rating, 5.0f);
      EXPECT_EQ(r.rating, std::round(r.rating)) << "integer star ratings";
    }
  }
}

TEST(SyntheticTest, ItemIdsNamespacedPerDomain) {
  SyntheticWorld world(TinyConfig());
  std::set<int> books_items(world.domain("Books").items().begin(),
                            world.domain("Books").items().end());
  for (int item : world.domain("Movies").items()) {
    EXPECT_EQ(books_items.count(item), 0u) << "item id collision " << item;
  }
}

TEST(SyntheticTest, UsersReviewEachItemAtMostOnce) {
  SyntheticWorld world(TinyConfig());
  const DomainDataset& d = world.domain("Music");
  for (int u : d.users()) {
    std::set<int> items;
    for (int idx : d.RecordsOfUser(u)) {
      EXPECT_TRUE(items.insert(d.reviews()[idx].item_id).second)
          << "duplicate item for user " << u;
    }
  }
}

TEST(SyntheticTest, SummariesWithinConfiguredLength) {
  SyntheticConfig c = TinyConfig();
  SyntheticWorld world(c);
  for (const Review& r : world.domain("Books").reviews()) {
    auto toks = text::Tokenize(r.summary);
    EXPECT_GE(static_cast<int>(toks.size()), c.summary_len_min);
    EXPECT_LE(static_cast<int>(toks.size()), c.summary_len_max);
  }
}

TEST(SyntheticTest, FullTextLongerThanSummary) {
  SyntheticWorld world(TinyConfig());
  size_t longer = 0, total = 0;
  for (const Review& r : world.domain("Books").reviews()) {
    ++total;
    if (r.full_text.size() > r.summary.size()) ++longer;
  }
  EXPECT_GT(longer, total * 9 / 10);
}

TEST(SyntheticTest, CrossDomainPairHasOverlap) {
  SyntheticWorld world(TinyConfig());
  CrossDomainDataset cross = world.MakePair("Books", "Movies");
  EXPECT_GT(cross.overlapping_users().size(), 10u);
}

TEST(SyntheticTest, SelectionEffectRaisesObservedAffinity) {
  // Users pick items they like: observed mean rating must exceed what the
  // intercept alone would give under uniform selection.
  SyntheticConfig with_sel = TinyConfig();
  with_sel.num_users = 150;
  with_sel.selection_gain = 1.5;
  SyntheticConfig without_sel = with_sel;
  without_sel.selection_gain = 0.0;
  SyntheticWorld sel_world(with_sel);
  SyntheticWorld uni_world(without_sel);
  EXPECT_GT(sel_world.domain("Books").GlobalMeanRating(),
            uni_world.domain("Books").GlobalMeanRating() + 0.05f);
}

TEST(SyntheticTest, DomainVocabulariesAreDistinctForTopics) {
  // Topic surface words differ across domains (vampireb0 vs vampirem0),
  // while sentiment words are shared.
  SyntheticWorld world(TinyConfig());
  std::set<std::string> books_tokens, movies_tokens;
  for (const Review& r : world.domain("Books").reviews()) {
    for (auto& t : text::Tokenize(r.summary)) books_tokens.insert(t);
  }
  for (const Review& r : world.domain("Movies").reviews()) {
    for (auto& t : text::Tokenize(r.summary)) movies_tokens.insert(t);
  }
  bool books_topic_in_movies = false;
  for (const auto& t : books_tokens) {
    if (t.rfind("vampireb", 0) == 0 && movies_tokens.count(t)) {
      books_topic_in_movies = true;
    }
  }
  EXPECT_FALSE(books_topic_in_movies);
  // Sentiment vocabulary is shared: at least one "superb*" token in both.
  auto has_superb = [](const std::set<std::string>& toks) {
    for (const auto& t : toks) {
      if (t.rfind("superb", 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_superb(books_tokens));
  EXPECT_TRUE(has_superb(movies_tokens));
}

TEST(SyntheticTest, UserPreferenceAccessibleAndStable) {
  SyntheticWorld world(TinyConfig());
  const auto& p = world.UserPreference(3);
  EXPECT_EQ(static_cast<int>(p.size()), world.config().latent_dim);
}

TEST(SyntheticTest, PresetsDiffer) {
  SyntheticConfig amazon = SyntheticConfig::AmazonLike();
  SyntheticConfig douban = SyntheticConfig::DoubanLike();
  // Douban is the sparser corpus with stronger taste-driven ratings.
  EXPECT_GT(amazon.mean_reviews_per_user, douban.mean_reviews_per_user);
  EXPECT_GT(amazon.num_users, douban.num_users);
  EXPECT_LT(amazon.affinity_scale, douban.affinity_scale);
}

TEST(SyntheticTest, ParticipationControlsDomainMembership) {
  SyntheticConfig c = TinyConfig();
  c.participation = 1.0;
  SyntheticWorld world(c);
  EXPECT_EQ(world.domain("Books").users().size(),
            static_cast<size_t>(c.num_users));
}

TEST(SyntheticTest, StreamDomainMatchesMaterializedRecords) {
  SyntheticConfig c = TinyConfig(77);
  SyntheticWorld materialized(c);
  SyntheticWorld deferred(c, {"Books", "Movies", "Music"},
                          /*materialize=*/false);
  for (const auto& name : materialized.domain_names()) {
    const DomainDataset& mem = materialized.domain(name);
    size_t i = 0;
    // Both worlds stream; the deferred one never built a dataset at all.
    deferred.StreamDomain(name, [&](Review&& r) {
      ASSERT_LT(i, mem.num_reviews());
      EXPECT_EQ(r.user_id, mem.ReviewUser(i));
      EXPECT_EQ(r.item_id, mem.ReviewItem(i));
      EXPECT_EQ(r.rating, mem.ReviewRating(i));
      EXPECT_EQ(r.summary, mem.ReviewSummary(i));
      EXPECT_EQ(r.full_text, mem.ReviewFullText(i));
      ++i;
    });
    EXPECT_EQ(i, mem.num_reviews()) << name;
  }
}

TEST(SyntheticTest, StreamDomainIsRepeatable) {
  SyntheticWorld world(TinyConfig(78), {"Books", "Movies"},
                       /*materialize=*/false);
  std::vector<Review> first, second;
  world.StreamDomain("Movies", [&](Review&& r) { first.push_back(r); });
  world.StreamDomain("Movies", [&](Review&& r) { second.push_back(r); });
  ASSERT_EQ(first.size(), second.size());
  ASSERT_FALSE(first.empty());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].user_id, second[i].user_id);
    EXPECT_EQ(first[i].summary, second[i].summary);
  }
}

}  // namespace
}  // namespace data
}  // namespace omnimatch
