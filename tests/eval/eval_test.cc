#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/table.h"

namespace omnimatch {
namespace eval {
namespace {

TEST(MetricsTest, PerfectPredictionsAreZero) {
  Metrics m = ComputeMetrics({1, 2, 3}, {1, 2, 3}).value();
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_EQ(m.count, 3);
}

TEST(MetricsTest, KnownValues) {
  // Errors: +1, -1 -> RMSE 1, MAE 1.
  Metrics m = ComputeMetrics({3, 1}, {2, 2}).value();
  EXPECT_DOUBLE_EQ(m.rmse, 1.0);
  EXPECT_DOUBLE_EQ(m.mae, 1.0);
}

TEST(MetricsTest, RmseAtLeastMae) {
  Metrics m = ComputeMetrics({1, 5, 3}, {2, 2, 3}).value();
  EXPECT_GE(m.rmse, m.mae);
}

TEST(MetricsTest, RmsePenalizesOutliersMore) {
  // Same MAE, different RMSE.
  Metrics spread = ComputeMetrics({0, 4}, {2, 2}).value();   // errors 2, 2
  Metrics outlier = ComputeMetrics({2, 6}, {2, 2}).value();  // errors 0, 4
  EXPECT_DOUBLE_EQ(spread.mae, outlier.mae);
  EXPECT_LT(spread.rmse, outlier.rmse);
}

TEST(MetricsTest, EmptyInputReturnsStatusNotAbort) {
  Result<Metrics> r = ComputeMetrics({}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MetricsTest, MismatchedLengthsRejected) {
  Result<Metrics> r = ComputeMetrics({1, 2}, {1});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MetricsAccumulatorTest, MatchesBatchComputation) {
  MetricsAccumulator acc;
  acc.Add(1.5f, 2.0f);
  acc.Add(4.0f, 3.0f);
  acc.Add(2.5f, 2.5f);
  Metrics streaming = acc.Finalize().value();
  Metrics batch =
      ComputeMetrics({1.5f, 4.0f, 2.5f}, {2.0f, 3.0f, 2.5f}).value();
  EXPECT_NEAR(streaming.rmse, batch.rmse, 1e-12);
  EXPECT_NEAR(streaming.mae, batch.mae, 1e-12);
}

TEST(MetricsAccumulatorTest, FinalizeOnEmptyAccumulatorFails) {
  MetricsAccumulator acc;
  Result<Metrics> r = acc.Finalize();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TableTest, RendersAlignedColumns) {
  AsciiTable table;
  table.SetHeader({"Method", "RMSE"});
  table.AddRow({"OmniMatch", "1.031"});
  table.AddRow({"x", "2"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| Method    | RMSE  |"), std::string::npos);
  EXPECT_NE(out.find("| OmniMatch | 1.031 |"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("+-----------+-------+"), std::string::npos);
}

TEST(TableTest, FormatMetricThreeDecimals) {
  EXPECT_EQ(FormatMetric(1.0307), "1.031");
  EXPECT_EQ(FormatMetric(0.7), "0.700");
}

TEST(TableTest, FormatDeltaSigned) {
  EXPECT_EQ(StrFormatDelta(5.66), "+5.7%");
  EXPECT_EQ(StrFormatDelta(-1.24), "-1.2%");
}

}  // namespace
}  // namespace eval
}  // namespace omnimatch
