#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/bipartite.h"
#include "graph/propagate.h"
#include "nn/grad_check.h"
#include "nn/ops.h"

namespace omnimatch {
namespace graph {
namespace {

// 2 users, 2 items; user0-item0, user0-item1, user1-item0.
InteractionGraph SmallGraph() {
  return InteractionGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}});
}

TEST(InteractionGraphTest, NodeLayoutAndDegrees) {
  InteractionGraph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.Degree(0), 2);  // user0
  EXPECT_EQ(g.Degree(1), 1);  // user1
  EXPECT_EQ(g.Degree(2), 2);  // item0
  EXPECT_EQ(g.Degree(3), 1);  // item1
}

TEST(InteractionGraphTest, DuplicateEdgesCoalesced) {
  InteractionGraph g(1, 1, {{0, 0}, {0, 0}, {0, 0}});
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.normalized_adjacency().nnz(), 2u);
}

TEST(InteractionGraphTest, SymmetricNormalization) {
  InteractionGraph g = SmallGraph();
  const Csr& adj = g.normalized_adjacency();
  // Edge (user0, item0): 1/sqrt(2*2) = 0.5.
  // Find it in user0's row.
  bool found = false;
  for (int e = adj.row_ptr[0]; e < adj.row_ptr[1]; ++e) {
    if (adj.col_idx[static_cast<size_t>(e)] == 2) {
      EXPECT_NEAR(adj.values[static_cast<size_t>(e)], 0.5f, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(InteractionGraphTest, AdjacencyIsSymmetric) {
  InteractionGraph g = SmallGraph();
  const Csr& adj = g.normalized_adjacency();
  Csr t = Transpose(adj);
  ASSERT_EQ(t.nnz(), adj.nnz());
  for (int r = 0; r < adj.rows; ++r) {
    for (int e = adj.row_ptr[static_cast<size_t>(r)];
         e < adj.row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      EXPECT_EQ(t.col_idx[static_cast<size_t>(e)],
                adj.col_idx[static_cast<size_t>(e)]);
      EXPECT_FLOAT_EQ(t.values[static_cast<size_t>(e)],
                      adj.values[static_cast<size_t>(e)]);
    }
  }
}

TEST(SpMvTest, HandComputed) {
  // adj = [[0, 1], [1, 0]] (identity-swapped), x = [[1, 2], [3, 4]].
  Csr adj;
  adj.rows = 2;
  adj.cols = 2;
  adj.row_ptr = {0, 1, 2};
  adj.col_idx = {1, 0};
  adj.values = {1.0f, 1.0f};
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> y(4, 0.0f);
  SpMv(adj, x.data(), 2, y.data());
  EXPECT_FLOAT_EQ(y[0], 3);
  EXPECT_FLOAT_EQ(y[1], 4);
  EXPECT_FLOAT_EQ(y[2], 1);
  EXPECT_FLOAT_EQ(y[3], 2);
}

TEST(TransposeTest, NonSymmetricMatrix) {
  // [[a, b], [0, c]] -> [[a, 0], [b, c]].
  Csr m;
  m.rows = 2;
  m.cols = 2;
  m.row_ptr = {0, 2, 3};
  m.col_idx = {0, 1, 1};
  m.values = {1.0f, 2.0f, 3.0f};
  Csr t = Transpose(m);
  EXPECT_EQ(t.row_ptr, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(t.col_idx, (std::vector<int>{0, 0, 1}));
  EXPECT_FLOAT_EQ(t.values[0], 1.0f);
  EXPECT_FLOAT_EQ(t.values[1], 2.0f);
  EXPECT_FLOAT_EQ(t.values[2], 3.0f);
}

TEST(SparseMatMulTest, MatchesDenseProduct) {
  InteractionGraph g = SmallGraph();
  auto adj = std::make_shared<Csr>(g.normalized_adjacency());
  Rng rng(1);
  nn::Tensor x = nn::Tensor::Zeros({4, 3});
  for (float& v : x.data()) v = rng.UniformFloat(-1, 1);
  nn::Tensor y = SparseMatMul(adj, x);
  // Dense reference.
  std::vector<float> dense(16, 0.0f);
  for (int r = 0; r < 4; ++r) {
    for (int e = adj->row_ptr[static_cast<size_t>(r)];
         e < adj->row_ptr[static_cast<size_t>(r) + 1]; ++e) {
      dense[static_cast<size_t>(r) * 4 +
            adj->col_idx[static_cast<size_t>(e)]] =
          adj->values[static_cast<size_t>(e)];
    }
  }
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) {
      float expect = 0.0f;
      for (int k = 0; k < 4; ++k) {
        expect += dense[static_cast<size_t>(r) * 4 + k] * x.At(k, c);
      }
      EXPECT_NEAR(y.At(r, c), expect, 1e-5);
    }
  }
}

TEST(SparseMatMulTest, GradientMatchesFiniteDifference) {
  InteractionGraph g = SmallGraph();
  auto adj = std::make_shared<Csr>(g.normalized_adjacency());
  Rng rng(2);
  nn::Tensor x = nn::Tensor::Zeros({4, 2}, /*requires_grad=*/true);
  for (float& v : x.data()) v = rng.UniformFloat(-1, 1);
  auto f = [&] {
    nn::Tensor y = SparseMatMul(adj, x);
    return nn::SumAll(nn::Mul(y, y));
  };
  EXPECT_LT(nn::MaxGradError(f, x), 2e-2);
}

TEST(SparseMatMulTest, TwoLayerPropagationGradient) {
  InteractionGraph g = SmallGraph();
  auto adj = std::make_shared<Csr>(g.normalized_adjacency());
  Rng rng(3);
  nn::Tensor x = nn::Tensor::Zeros({4, 2}, /*requires_grad=*/true);
  for (float& v : x.data()) v = rng.UniformFloat(-1, 1);
  auto f = [&] {
    nn::Tensor y = SparseMatMul(adj, SparseMatMul(adj, x));
    return nn::SumAll(nn::Mul(y, y));
  };
  EXPECT_LT(nn::MaxGradError(f, x), 2e-2);
}

}  // namespace
}  // namespace graph
}  // namespace omnimatch
