// End-to-end integration: generate a corpus, train OmniMatch and two
// baselines under the same split, and check the qualitative claims the
// paper's evaluation rests on — at miniature scale so the whole file runs
// in a few seconds.

#include <gtest/gtest.h>

#include "baselines/lightgcn.h"
#include "baselines/recommender.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "eval/runner.h"

namespace omnimatch {
namespace {

data::SyntheticConfig SmallWorld() {
  data::SyntheticConfig c;
  c.num_users = 140;
  c.items_per_domain = 70;
  c.mean_reviews_per_user = 6;
  c.seed = 404;
  return c;
}

core::OmniMatchConfig SmallModel() {
  core::OmniMatchConfig config;
  config.embed_dim = 16;
  config.cnn_channels = 8;
  config.feature_dim = 16;
  config.projection_dim = 8;
  config.doc_len = 32;
  config.item_doc_len = 32;
  config.batch_size = 32;
  config.epochs = 5;
  config.aux_eval_samples = 2;
  config.seed = 11;
  return config;
}

TEST(EndToEndTest, TrainingImprovesOverUntrainedModel) {
  data::SyntheticWorld world(SmallWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);

  core::OmniMatchConfig untrained_config = SmallModel();
  untrained_config.epochs = 0;
  core::OmniMatchTrainer untrained(untrained_config, &cross, split);
  ASSERT_TRUE(untrained.Prepare().ok());
  untrained.Train();
  eval::Metrics before = untrained.Evaluate(split.test_users);

  core::OmniMatchTrainer trainer(SmallModel(), &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  eval::Metrics after = trainer.Evaluate(split.test_users);

  EXPECT_LT(after.rmse, before.rmse);
}

TEST(EndToEndTest, RunnerProducesAllRequestedMethods) {
  data::SyntheticWorld world(SmallWorld());
  eval::RunnerOptions options;
  options.methods = {"LIGHTGCN", "CMF", "OmniMatch"};
  options.omnimatch = SmallModel();
  options.seed = 3;
  eval::ScenarioResult result =
      eval::RunScenario(world, "Books", "Music", options);
  ASSERT_EQ(result.methods.size(), 3u);
  EXPECT_EQ(result.scenario, "Books -> Music");
  for (const auto& m : result.methods) {
    EXPECT_GT(m.test.rmse, 0.0);
    EXPECT_GT(m.test.count, 0);
  }
}

TEST(EndToEndTest, RunnerTrialsAverage) {
  data::SyntheticWorld world(SmallWorld());
  eval::RunnerOptions options;
  options.methods = {"CMF"};
  options.trials = 2;
  options.seed = 9;
  eval::ScenarioResult result =
      eval::RunScenario(world, "Movies", "Books", options);
  // Two trials accumulate twice the per-trial count.
  EXPECT_GT(result.methods[0].test.count, 0);
}

TEST(EndToEndTest, CsvRoundTripTrainsIdentically) {
  // Persist the corpus, reload it, and verify the reloaded scenario trains
  // to exactly the same cold-start metrics (the adoption path for real
  // datasets).
  data::SyntheticWorld world(SmallWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");

  std::string src_path = testing::TempDir() + "/e2e_source.tsv";
  std::string tgt_path = testing::TempDir() + "/e2e_target.tsv";
  ASSERT_TRUE(data::SaveDomainTsv(cross.source(), src_path).ok());
  ASSERT_TRUE(data::SaveDomainTsv(cross.target(), tgt_path).ok());
  auto src = data::LoadDomainTsv(src_path, "Books");
  auto tgt = data::LoadDomainTsv(tgt_path, "Movies");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(tgt.ok());
  data::CrossDomainDataset reloaded(std::move(src).value(),
                                    std::move(tgt).value());

  Rng rng(5);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  core::OmniMatchTrainer a(SmallModel(), &cross, split);
  core::OmniMatchTrainer b(SmallModel(), &reloaded, split);
  ASSERT_TRUE(a.Prepare().ok());
  ASSERT_TRUE(b.Prepare().ok());
  a.Train();
  b.Train();
  EXPECT_DOUBLE_EQ(a.Evaluate(split.test_users).rmse,
                   b.Evaluate(split.test_users).rmse);
  std::remove(src_path.c_str());
  std::remove(tgt_path.c_str());
}

TEST(EndToEndTest, ColdUsersNeverContributeTargetTrainingSamples) {
  // Protocol audit: train with epochs=0 and verify the trainer's evaluation
  // of cold users runs on exactly the hidden records.
  data::SyntheticWorld world(SmallWorld());
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng rng(6);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &rng);
  core::OmniMatchConfig config = SmallModel();
  config.epochs = 0;
  core::OmniMatchTrainer trainer(config, &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  eval::Metrics m = trainer.Evaluate(split.test_users);
  size_t expected = data::TargetRecordsOfUsers(cross, split.test_users).size();
  EXPECT_EQ(static_cast<size_t>(m.count), expected);
}

}  // namespace
}  // namespace omnimatch
