#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"

namespace omnimatch {
namespace nn {
namespace {

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(-1.0f, 1.0f);
  return v;
}

/// The blocked kernels must match the naive reference within float
/// round-off on every shape, including degenerate and off-tile ones.
const int kDims[] = {1, 3, 17, 64, 65};

float MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(GemmTest, NNMatchesReferenceOnAllShapes) {
  Rng rng(11);
  for (int m : kDims) {
    for (int k : kDims) {
      for (int n : kDims) {
        std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
        std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
        // Accumulation contract: C += A*B on top of existing contents.
        std::vector<float> c0 = RandomVec(static_cast<size_t>(m) * n, &rng);
        std::vector<float> want = c0, got = c0;
        reference::GemmNN(a.data(), b.data(), want.data(), m, k, n);
        GemmNN(a.data(), b.data(), got.data(), m, k, n);
        EXPECT_LE(MaxAbsDiff(want, got), 1e-4f)
            << "shape " << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(GemmTest, NTMatchesReferenceOnAllShapes) {
  Rng rng(12);
  for (int m : kDims) {
    for (int k : kDims) {
      for (int n : kDims) {
        std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
        std::vector<float> b = RandomVec(static_cast<size_t>(n) * k, &rng);
        std::vector<float> want(static_cast<size_t>(m) * n, 0.0f);
        std::vector<float> got = want;
        reference::GemmNT(a.data(), b.data(), want.data(), m, k, n);
        GemmNT(a.data(), b.data(), got.data(), m, k, n);
        EXPECT_LE(MaxAbsDiff(want, got), 1e-4f)
            << "shape " << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(GemmTest, TNMatchesReferenceOnAllShapes) {
  Rng rng(13);
  for (int m : kDims) {
    for (int k : kDims) {
      for (int n : kDims) {
        std::vector<float> a = RandomVec(static_cast<size_t>(k) * m, &rng);
        std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
        std::vector<float> want(static_cast<size_t>(m) * n, 0.0f);
        std::vector<float> got = want;
        reference::GemmTN(a.data(), b.data(), want.data(), m, k, n);
        GemmTN(a.data(), b.data(), got.data(), m, k, n);
        EXPECT_LE(MaxAbsDiff(want, got), 1e-4f)
            << "shape " << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(GemmTest, StridedNTMatchesReferenceWithOverlappingRows) {
  // The text conv's sliding windows: lda = embed < K, rows overlap.
  Rng rng(14);
  int embed = 8, kernel = 3, length = 20, channels = 5;
  int windows = length - kernel + 1;
  int filter_len = kernel * embed;
  std::vector<float> doc =
      RandomVec(static_cast<size_t>(length) * embed, &rng);
  std::vector<float> w =
      RandomVec(static_cast<size_t>(channels) * filter_len, &rng);
  std::vector<float> want(static_cast<size_t>(windows) * channels, 0.0f);
  std::vector<float> got = want;
  reference::GemmNTStrided(doc.data(), embed, w.data(), want.data(), windows,
                           filter_len, channels);
  GemmNTStrided(doc.data(), embed, w.data(), got.data(), windows, filter_len,
                channels);
  EXPECT_LE(MaxAbsDiff(want, got), 1e-4f);
}

TEST(GemmTest, BitIdenticalAcrossThreadCounts) {
  // The substrate's core guarantee: the pool size never changes a single
  // bit of the output.
  Rng rng(15);
  int m = 173, k = 301, n = 129;  // off-tile on every axis
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
  int before = GetNumThreads();
  std::vector<float> golden;
  for (int threads : {1, 2, 3, 4, 8}) {
    SetNumThreads(threads);
    std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
    GemmNN(a.data(), b.data(), c.data(), m, k, n);
    if (golden.empty()) {
      golden = c;
    } else {
      ASSERT_EQ(golden, c) << "GemmNN differs at " << threads << " threads";
    }
  }
  SetNumThreads(before);
}

TEST(GemmTest, LargeKAccumulatesInBlockOrder) {
  // K spans multiple kKC blocks; verify against the reference within
  // round-off (the blocked kernel sums K in ascending block order).
  Rng rng(16);
  int m = 9, k = 700, n = 33;
  std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
  std::vector<float> want(static_cast<size_t>(m) * n, 0.0f);
  std::vector<float> got = want;
  reference::GemmNN(a.data(), b.data(), want.data(), m, k, n);
  GemmNN(a.data(), b.data(), got.data(), m, k, n);
  EXPECT_LE(MaxAbsDiff(want, got), 5e-4f);
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
