#include "nn/graph.h"

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "nn/losses.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {
namespace graph {
namespace {

// ---------------------------------------------------------------------------
// Arena planner properties.
// ---------------------------------------------------------------------------

bool Intersects(const ArenaRequest& a, const ArenaRequest& b) {
  return a.start <= b.end && b.start <= a.end;
}

void CheckPlacements(const std::vector<ArenaRequest>& requests,
                     const std::vector<int64_t>& offsets,
                     int64_t total_bytes) {
  ASSERT_EQ(offsets.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_GE(offsets[i], 0) << "request " << i;
    ASSERT_EQ(offsets[i] % kArenaAlign, 0) << "request " << i;
    ASSERT_LE(offsets[i] + requests[i].bytes, total_bytes) << "request " << i;
    for (size_t j = 0; j < i; ++j) {
      if (!Intersects(requests[i], requests[j])) continue;
      bool disjoint = offsets[i] + requests[i].bytes <= offsets[j] ||
                      offsets[j] + requests[j].bytes <= offsets[i];
      ASSERT_TRUE(disjoint)
          << "live-overlapping requests " << j << " and " << i
          << " share bytes: [" << offsets[j] << ", "
          << offsets[j] + requests[j].bytes << ") vs [" << offsets[i] << ", "
          << offsets[i] + requests[i].bytes << ")";
    }
  }
}

TEST(FirstFitArenaTest, EmptyPlanIsEmpty) {
  int64_t total = -1;
  std::vector<int64_t> offsets = FirstFitArena({}, &total);
  EXPECT_TRUE(offsets.empty());
  EXPECT_EQ(total, 0);
}

TEST(FirstFitArenaTest, DisjointLifetimesShareBytes) {
  // Two buffers that are never live together must reuse the same offset.
  std::vector<ArenaRequest> requests = {{0, 3, 256}, {4, 9, 256}};
  int64_t total = 0;
  std::vector<int64_t> offsets = FirstFitArena(requests, &total);
  CheckPlacements(requests, offsets, total);
  EXPECT_EQ(offsets[0], offsets[1]);
  EXPECT_EQ(total, 256);
}

TEST(FirstFitArenaTest, OverlappingLifetimesGetDisjointBytes) {
  std::vector<ArenaRequest> requests = {{0, 5, 100}, {2, 7, 100}, {5, 9, 100}};
  int64_t total = 0;
  std::vector<int64_t> offsets = FirstFitArena(requests, &total);
  CheckPlacements(requests, offsets, total);
  EXPECT_NE(offsets[0], offsets[1]);
  EXPECT_NE(offsets[1], offsets[2]);
}

TEST(FirstFitArenaTest, RandomLiveRangesNeverOverlap) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    int n = rng.UniformInt(1, 60);
    std::vector<ArenaRequest> requests;
    int64_t naive_total = 0;
    for (int i = 0; i < n; ++i) {
      ArenaRequest r;
      r.start = rng.UniformInt(0, 40);
      r.end = r.start + rng.UniformInt(0, 20);
      r.bytes = rng.UniformInt(1, 4096);
      naive_total += (r.bytes + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
      requests.push_back(r);
    }
    int64_t total = 0;
    std::vector<int64_t> offsets = FirstFitArena(requests, &total);
    CheckPlacements(requests, offsets, total);
    // Sharing can never do worse than giving every buffer its own slot.
    EXPECT_LE(total, naive_total) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Record / replay equivalence on a miniature training program that covers
// every lowered op: gather+reshape (fused), conv+max-pool, mean-pooling,
// concat, two linear layers (fused, one with ReLU), dropout, grad reversal,
// both losses, and a dead branch for DCE.
// ---------------------------------------------------------------------------

constexpr int kVocab = 23;
constexpr int kEmbed = 6;
constexpr int kDocLen = 5;
constexpr int kChannels = 4;
constexpr int kKernel = 2;
constexpr int kHidden = 8;
constexpr int kClasses = 3;

struct MiniModel {
  Tensor table, conv_w, conv_b, w1, b1, w2, b2;

  explicit MiniModel(uint64_t seed) {
    Rng rng(seed);
    auto param = [&](std::vector<int> shape) {
      Tensor t = Tensor::Zeros(shape, /*requires_grad=*/true);
      for (float& v : t.data()) {
        v = rng.UniformFloat(-0.4f, 0.4f);
      }
      return t;
    };
    table = param({kVocab, kEmbed});
    conv_w = param({kChannels, kKernel * kEmbed});
    conv_b = param({kChannels});
    w1 = param({kChannels + kEmbed, kHidden});
    b1 = param({kHidden});
    w2 = param({kHidden, kClasses});
    b2 = param({kClasses});
  }

  std::vector<Tensor*> Params() {
    return {&table, &conv_w, &conv_b, &w1, &b1, &w2, &b2};
  }
};

struct MiniRun {
  std::vector<double> losses;
  std::vector<std::vector<float>> params;
};

/// One forward + losses; `use_tanh` injects an op with no graph lowering.
Tensor MiniForward(MiniModel& m, int b, int step, Rng* dropout_rng,
                   bool use_tanh) {
  std::vector<int> ids(static_cast<size_t>(b) * kDocLen);
  std::vector<int> labels(static_cast<size_t>(b));
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>((step * 7 + i * 3 + 1) % kVocab);
  }
  for (int i = 0; i < b; ++i) {
    labels[static_cast<size_t>(i)] = (step + i) % kClasses;
  }

  Tensor emb = Gather(m.table, ids);
  Tensor docs = Reshape(emb, {b, kDocLen, kEmbed});
  Tensor conv = TextConvMaxPool(docs, m.conv_w, m.conv_b, kKernel);
  Tensor mean = MeanAxis1(docs);
  Tensor feat = ConcatCols({conv, mean});
  Tensor h = Relu(AddRowBroadcast(MatMul(feat, m.w1), m.b1));
  if (use_tanh) h = Tanh(h);
  Tensor hd = Dropout(h, 0.3f, /*training=*/true, dropout_rng);
  Tensor logits = AddRowBroadcast(MatMul(hd, m.w2), m.b2);
  Tensor loss = SoftmaxCrossEntropy(logits, labels);

  // Contrastive term through a gradient-reversed view, so the backward
  // schedule sees GradReverse / Scale / Add and two loss roots.
  Tensor rev = GradReverse(hd, 0.5f);
  Tensor scl = SupConLoss(ConcatRows({hd, rev}),
                          [&] {
                            std::vector<int> twice = labels;
                            twice.insert(twice.end(), labels.begin(),
                                         labels.end());
                            return twice;
                          }(),
                          0.2f);

  // Dead branch: computed eagerly, never reaches the loss. DCE must drop it
  // without perturbing replay results.
  Tensor dead = Mul(Scale(conv, 2.0f), conv);
  (void)dead;

  return Add(loss, Scale(scl, 0.3f));
}

MiniRun RunMini(int threads, GraphExecutor* exec,
                const std::vector<int>& batch_sizes, bool use_tanh = false) {
  SetNumThreads(threads);
  MiniModel m(99);
  Rng dropout_rng(4242);
  MiniRun out;
  constexpr float kLr = 0.05f;
  for (size_t step = 0; step < batch_sizes.size(); ++step) {
    int b = batch_sizes[step];
    StepScope scope(exec, /*signature=*/b);
    Tensor loss = MiniForward(m, b, static_cast<int>(step), &dropout_rng,
                              use_tanh);
    out.losses.push_back(loss.ScalarValue());
    loss.Backward();
    for (Tensor* p : m.Params()) {
      std::vector<float>& data = p->data();
      const std::vector<float>& grad = p->grad();
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] -= kLr * grad[i];
      }
      p->ZeroGrad();
    }
  }
  for (Tensor* p : m.Params()) {
    out.params.push_back(p->data());
  }
  SetNumThreads(0);
  return out;
}

void ExpectBitIdentical(const MiniRun& a, const MiniRun& b) {
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]) << "loss at step " << i;
  }
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t p = 0; p < a.params.size(); ++p) {
    ASSERT_EQ(a.params[p].size(), b.params[p].size());
    for (size_t i = 0; i < a.params[p].size(); ++i) {
      ASSERT_EQ(a.params[p][i], b.params[p][i])
          << "param " << p << " element " << i;
    }
  }
}

TEST(GraphExecTest, ReplayBitIdenticalToEagerAcrossThreadCounts) {
  std::vector<int> batches(6, 4);
  MiniRun golden = RunMini(1, nullptr, batches);
  for (int threads : {1, 2, 4}) {
    MiniRun eager = RunMini(threads, nullptr, batches);
    ExpectBitIdentical(golden, eager);

    GraphExecutor exec;
    MiniRun graph = RunMini(threads, &exec, batches);
    ExpectBitIdentical(golden, graph);
    EXPECT_EQ(exec.stats().plans, 1) << threads << " threads";
    EXPECT_EQ(exec.stats().record_steps, 1);
    EXPECT_EQ(exec.stats().replay_steps, 5);
    EXPECT_EQ(exec.stats().fallback_signatures, 0);
  }
}

TEST(GraphExecTest, FusionAndDcePassesFire) {
  GraphExecutor exec;
  RunMini(1, &exec, {4, 4});
  // Two matmul+bias chains (one with ReLU) and one gather+reshape pair.
  EXPECT_EQ(exec.stats().fused_linear, 2);
  EXPECT_EQ(exec.stats().fused_gather, 1);
  // The dead Mul/Scale branch must be eliminated.
  EXPECT_GE(exec.stats().dead_nodes, 2);
  EXPECT_GT(exec.stats().arena_bytes_max, 0);
}

TEST(GraphExecTest, BatchShapeChangeRecordsSecondPlan) {
  std::vector<int> batches = {4, 4, 3, 4, 3};
  MiniRun eager = RunMini(1, nullptr, batches);
  GraphExecutor exec;
  MiniRun graph = RunMini(1, &exec, batches);
  ExpectBitIdentical(eager, graph);
  EXPECT_EQ(exec.stats().plans, 2);
  EXPECT_EQ(exec.stats().record_steps, 2);
  EXPECT_EQ(exec.stats().replay_steps, 3);
}

TEST(GraphExecTest, UnsupportedOpFallsBackToEager) {
  std::vector<int> batches(4, 4);
  MiniRun eager = RunMini(1, nullptr, batches, /*use_tanh=*/true);
  GraphExecutor exec;
  MiniRun graph = RunMini(1, &exec, batches, /*use_tanh=*/true);
  ExpectBitIdentical(eager, graph);
  // Tanh has no lowering: the signature is marked permanently eager after
  // the first recording attempt and no plan is ever compiled.
  EXPECT_EQ(exec.stats().plans, 0);
  EXPECT_EQ(exec.stats().replay_steps, 0);
  EXPECT_EQ(exec.stats().fallback_signatures, 1);
}

TEST(GraphExecTest, TapeReleasedAfterBackward) {
  // Satellite fix: Backward() must drop each visited node's closure and
  // parent edges so the step graph dies immediately, not at handle drop.
  Tensor x = Tensor::FromData({2, 2}, {1.0f, -2.0f, 3.0f, -4.0f},
                              /*requires_grad=*/true);
  Tensor y = SumAll(Relu(x));
  y.Backward();
  EXPECT_EQ(y.impl()->backward_fn, nullptr);
  EXPECT_TRUE(y.impl()->parents.empty());
  EXPECT_EQ(x.grad()[0], 1.0f);
  EXPECT_EQ(x.grad()[1], 0.0f);
}

}  // namespace
}  // namespace graph
}  // namespace nn
}  // namespace omnimatch
