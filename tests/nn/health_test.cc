#include "nn/health.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/threadpool.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(BufferHealthTest, EmptyBufferIsHealthy) {
  BufferHealth h = ScanBuffer(nullptr, 0);
  EXPECT_EQ(h.count, 0);
  EXPECT_TRUE(h.finite());
  EXPECT_EQ(h.l2(), 0.0);
}

TEST(BufferHealthTest, CountsAndExtremes) {
  std::vector<float> data = {1.0f, -3.0f, 2.0f, 0.5f};
  BufferHealth h = ScanBuffer(data.data(), 4);
  EXPECT_EQ(h.count, 4);
  EXPECT_TRUE(h.finite());
  EXPECT_FLOAT_EQ(h.min_value, -3.0f);
  EXPECT_FLOAT_EQ(h.max_value, 2.0f);
  EXPECT_NEAR(h.l2(), std::sqrt(1.0 + 9.0 + 4.0 + 0.25), 1e-12);
}

TEST(BufferHealthTest, CountsNanAndInfSeparately) {
  std::vector<float> data = {1.0f, kNaN, -kInf, 2.0f, kNaN};
  BufferHealth h = ScanBuffer(data.data(), 5);
  EXPECT_EQ(h.nan_count, 2);
  EXPECT_EQ(h.inf_count, 1);
  EXPECT_EQ(h.nonfinite(), 3);
  EXPECT_FALSE(h.finite());
  // Extremes and L2 cover the FINITE values only.
  EXPECT_FLOAT_EQ(h.min_value, 1.0f);
  EXPECT_FLOAT_EQ(h.max_value, 2.0f);
  EXPECT_NEAR(h.l2(), std::sqrt(5.0), 1e-12);
}

TEST(BufferHealthTest, MergeAccumulates) {
  std::vector<float> a = {1.0f, kNaN};
  std::vector<float> b = {-4.0f, kInf, 3.0f};
  BufferHealth h = ScanBuffer(a.data(), 2);
  h.Merge(ScanBuffer(b.data(), 3));
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.nan_count, 1);
  EXPECT_EQ(h.inf_count, 1);
  EXPECT_FLOAT_EQ(h.min_value, -4.0f);
  EXPECT_FLOAT_EQ(h.max_value, 3.0f);
}

TEST(BufferHealthTest, ParallelScanBitIdenticalAcrossThreadCounts) {
  // Large enough to cross several scan blocks. The sum-of-squares must be
  // BIT-identical for any pool size, not merely close.
  Rng rng(99);
  std::vector<float> data(200000);
  for (float& v : data) v = static_cast<float>(rng.Normal(0.0, 3.0));
  data[12345] = kNaN;
  data[170001] = kInf;

  SetNumThreads(1);
  BufferHealth serial = ScanBuffer(data.data(),
                                   static_cast<int64_t>(data.size()));
  SetNumThreads(4);
  BufferHealth parallel = ScanBuffer(data.data(),
                                     static_cast<int64_t>(data.size()));
  SetNumThreads(0);

  EXPECT_EQ(serial.nan_count, parallel.nan_count);
  EXPECT_EQ(serial.inf_count, parallel.inf_count);
  EXPECT_EQ(serial.min_value, parallel.min_value);
  EXPECT_EQ(serial.max_value, parallel.max_value);
  EXPECT_EQ(serial.sum_sq, parallel.sum_sq);  // exact, not approximate
}

TEST(CheckHealthTest, ReportsPerTensorAndAggregate) {
  Tensor a = Tensor::Zeros({2, 2});
  Tensor b = Tensor::Zeros({3});
  a.data() = {1.0f, 2.0f, 3.0f, 4.0f};
  b.data() = {kNaN, 0.0f, -1.0f};

  HealthReport report = CheckHealth({a, b}, /*with_grads=*/false);
  ASSERT_EQ(report.param_health.size(), 2u);
  EXPECT_TRUE(report.param_health[0].finite());
  EXPECT_FALSE(report.param_health[1].finite());
  EXPECT_EQ(report.params.count, 7);
  EXPECT_EQ(report.params.nan_count, 1);
  EXPECT_FALSE(report.all_finite());
  EXPECT_TRUE(report.grad_health.empty());
}

TEST(CheckHealthTest, UnallocatedGradsAreHealthy) {
  Tensor a = Tensor::Zeros({4});
  HealthReport report = CheckHealth({a}, /*with_grads=*/true);
  EXPECT_TRUE(report.all_finite());
  EXPECT_EQ(report.grads.count, 0);
}

TEST(CheckHealthTest, PoisonedGradDetected) {
  Tensor a = Tensor::Zeros({4});
  a.impl()->EnsureGrad();
  a.grad()[2] = kNaN;
  HealthReport report = CheckHealth({a}, /*with_grads=*/true);
  EXPECT_TRUE(report.params.finite());
  EXPECT_FALSE(report.grads.finite());
  EXPECT_FALSE(report.all_finite());
}

TEST(CheckHealthTest, ToStringMentionsNonFinite) {
  Tensor a = Tensor::Zeros({2});
  a.data()[0] = kNaN;
  HealthReport report = CheckHealth({a}, /*with_grads=*/false);
  std::string text = report.ToString();
  EXPECT_NE(text.find("nonfinite"), std::string::npos);
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
