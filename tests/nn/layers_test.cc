#include "nn/layers.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace omnimatch {
namespace nn {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear l(4, 3, &rng);
  Tensor x = Tensor::Zeros({2, 4});
  Tensor y = l.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear l(3, 2, &rng);
  // Bias starts at zero, so zero input -> zero output.
  Tensor y = l.Forward(Tensor::Zeros({1, 3}));
  for (float v : y.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(LinearTest, HasTwoParameters) {
  Rng rng(3);
  Linear l(5, 7, &rng);
  auto params = l.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].numel(), 35);
  EXPECT_EQ(params[1].numel(), 7);
  EXPECT_EQ(l.NumParameters(), 42);
}

TEST(LinearTest, GradientFlowsToWeights) {
  Rng rng(4);
  Linear l(3, 2, &rng);
  Tensor x = Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor loss = SumAll(Mul(l.Forward(x), l.Forward(x)));
  loss.Backward();
  bool any_nonzero = false;
  for (float g : l.Parameters()[0].grad()) {
    if (g != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(MlpTest, ForwardShapeMultiLayer) {
  Rng rng(5);
  Mlp mlp({8, 16, 4}, 0.0f, &rng);
  Tensor y = mlp.Forward(Tensor::Zeros({3, 8}));
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 4);
}

TEST(MlpTest, ParameterCount) {
  Rng rng(6);
  Mlp mlp({8, 16, 4}, 0.0f, &rng);
  // (8*16 + 16) + (16*4 + 4) = 144 + 68
  EXPECT_EQ(mlp.NumParameters(), 212);
}

TEST(MlpTest, DropoutOnlyInTraining) {
  Rng rng(7);
  Mlp mlp({4, 32, 2}, 0.9f, &rng);
  Tensor x = Tensor::FromData({1, 4}, {1, 1, 1, 1});
  mlp.set_training(false);
  Tensor y1 = mlp.Forward(x);
  Tensor y2 = mlp.Forward(x);
  // Eval mode: deterministic.
  for (int i = 0; i < 2; ++i) EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(MlpTest, GradCheckSmall) {
  Rng rng(8);
  Mlp mlp({3, 5, 2}, 0.0f, &rng);
  Tensor x = Tensor::FromData({2, 3}, {0.1f, -0.2f, 0.3f, 0.7f, 0.2f, -0.5f},
                              true);
  auto f = [&] {
    Tensor y = mlp.Forward(x);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(MaxGradError(f, x), 2e-2);
}

TEST(EmbeddingTableTest, LookupShape) {
  Rng rng(9);
  EmbeddingTable emb(10, 4, &rng);
  Tensor y = emb.Forward({1, 5, 1});
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 4);
  // Repeated id yields identical rows.
  for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(y.At(0, c), y.At(2, c));
}

TEST(EmbeddingTableTest, FrozenStopsGradient) {
  Rng rng(10);
  EmbeddingTable emb(6, 3, &rng);
  emb.set_frozen(true);
  Tensor y = emb.Forward({0, 1});
  EXPECT_FALSE(y.requires_grad());
  emb.set_frozen(false);
  EXPECT_TRUE(emb.Forward({0, 1}).requires_grad());
}

TEST(EmbeddingTableTest, TrainingMovesOnlyTouchedRows) {
  Rng rng(11);
  EmbeddingTable emb(5, 2, &rng);
  Tensor before = emb.table().DetachCopy();
  Tensor out = emb.Forward({1, 3});
  SumAll(Mul(out, out)).Backward();
  // Rows 0, 2, 4 were untouched: zero grad.
  for (int r : {0, 2, 4}) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(emb.table().grad()[r * 2 + c], 0.0f);
    }
  }
}

TEST(TextCnnTest, OutputDimIsChannelsTimesKernels) {
  Rng rng(12);
  TextCnn cnn(8, 6, {3, 4, 5}, &rng);
  EXPECT_EQ(cnn.output_dim(), 18);
  Tensor x = Tensor::Zeros({2, 10, 8});
  Tensor y = cnn.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 18);
}

TEST(TextCnnTest, GradCheckThroughCnn) {
  Rng rng(13);
  TextCnn cnn(3, 2, {2, 3}, &rng);
  Tensor x = Tensor::Zeros({1, 5, 3}, true);
  Rng data_rng(14);
  for (float& v : x.data()) v = data_rng.UniformFloat(-1.0f, 1.0f);
  auto f = [&] {
    Tensor y = cnn.Forward(x);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(MaxGradError(f, x), 2e-2);
}

TEST(TextCnnTest, SingleKernelNoConcat) {
  Rng rng(15);
  TextCnn cnn(4, 3, {2}, &rng);
  Tensor y = cnn.Forward(Tensor::Zeros({1, 6, 4}));
  EXPECT_EQ(y.dim(1), 3);
}

TEST(MiniTransformerTest, ForwardDocShape) {
  Rng rng(16);
  MiniTransformerEncoder enc(8, 5, &rng);
  Tensor doc = Tensor::Zeros({7, 8});
  Tensor y = enc.ForwardDoc(doc);
  EXPECT_EQ(y.dim(0), 1);
  EXPECT_EQ(y.dim(1), 5);
}

TEST(MiniTransformerTest, BatchForwardStacksRows) {
  Rng rng(17);
  MiniTransformerEncoder enc(4, 3, &rng);
  std::vector<Tensor> docs = {Tensor::Zeros({5, 4}), Tensor::Zeros({6, 4})};
  Tensor y = enc.Forward(docs);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(MiniTransformerTest, GradFlowsToAllProjections) {
  Rng rng(18);
  MiniTransformerEncoder enc(4, 3, &rng);
  Tensor doc = Tensor::Zeros({5, 4});
  Rng data_rng(19);
  for (float& v : doc.data()) v = data_rng.UniformFloat(-1.0f, 1.0f);
  Tensor y = enc.ForwardDoc(doc);
  SumAll(Mul(y, y)).Backward();
  for (const Tensor& p : enc.Parameters()) {
    bool any = false;
    for (float g : p.grad()) {
      if (g != 0.0f) any = true;
    }
    // Output-layer bias always gets gradient; weight matrices should too for
    // a random doc (ReLU may rarely kill everything, but not with 3 outputs).
    EXPECT_TRUE(any || p.numel() == 3);
  }
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
