#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/ops.h"

namespace omnimatch {
namespace nn {
namespace {

constexpr double kGradTol = 2e-2;

Tensor RandomTensor(std::vector<int> shape, Rng* rng,
                    bool requires_grad = true) {
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) v = rng->UniformFloat(-1.0f, 1.0f);
  return t;
}

// ---------- SoftmaxCrossEntropy ----------

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.ScalarValue(), std::log(4.0f), 1e-5);
}

TEST(CrossEntropyTest, ConfidentCorrectIsSmall) {
  Tensor logits = Tensor::FromData({1, 3}, {10, 0, 0});
  Tensor loss = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(loss.ScalarValue(), 1e-3f);
}

TEST(CrossEntropyTest, ConfidentWrongIsLarge) {
  Tensor logits = Tensor::FromData({1, 3}, {10, 0, 0});
  Tensor loss = SoftmaxCrossEntropy(logits, {2});
  EXPECT_GT(loss.ScalarValue(), 5.0f);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(31);
  Tensor logits = RandomTensor({4, 5}, &rng);
  std::vector<int> labels = {0, 2, 4, 2};
  auto f = [&] { return SoftmaxCrossEntropy(logits, labels); };
  EXPECT_LT(MaxGradError(f, logits), kGradTol);
}

TEST(CrossEntropyTest, GradientSumsToZeroPerRow) {
  // d/dlogits of CE is (p - onehot)/B; each row sums to zero.
  Rng rng(32);
  Tensor logits = RandomTensor({3, 4}, &rng);
  SoftmaxCrossEntropy(logits, {1, 0, 3}).Backward();
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 4; ++c) sum += logits.grad()[r * 4 + c];
    EXPECT_NEAR(sum, 0.0f, 1e-6);
  }
}

// ---------- MseLoss ----------

TEST(MseTest, ZeroWhenEqual) {
  Tensor pred = Tensor::FromData({3}, {1, 2, 3});
  EXPECT_FLOAT_EQ(MseLoss(pred, {1, 2, 3}).ScalarValue(), 0.0f);
}

TEST(MseTest, KnownValue) {
  Tensor pred = Tensor::FromData({2}, {0, 0});
  // ((0-1)^2 + (0-3)^2)/2 = 5
  EXPECT_FLOAT_EQ(MseLoss(pred, {1, 3}).ScalarValue(), 5.0f);
}

TEST(MseTest, GradientMatchesFiniteDifference) {
  Rng rng(33);
  Tensor pred = RandomTensor({6}, &rng);
  std::vector<float> target = {0.5f, -0.5f, 1.0f, 0.0f, 2.0f, -1.0f};
  EXPECT_LT(MaxGradError([&] { return MseLoss(pred, target); }, pred),
            kGradTol);
}

// ---------- SupConLoss ----------

TEST(SupConTest, NoPositivesYieldsZeroConstant) {
  Rng rng(34);
  Tensor feats = RandomTensor({3, 4}, &rng);
  Tensor loss = SupConLoss(feats, {0, 1, 2}, 0.07f);
  EXPECT_FLOAT_EQ(loss.ScalarValue(), 0.0f);
  EXPECT_FALSE(loss.requires_grad());
}

TEST(SupConTest, LowerWhenSameLabelFeaturesCluster) {
  // Clustered: same-label rows nearly identical.
  Tensor clustered = Tensor::FromData(
      {4, 2}, {1, 0, 0.99f, 0.01f, 0, 1, 0.01f, 0.99f});
  // Mixed: same-label rows orthogonal to each other.
  Tensor mixed = Tensor::FromData(
      {4, 2}, {1, 0, 0, 1, 1, 0, 0, 1});
  std::vector<int> labels = {0, 0, 1, 1};
  float l_clustered = SupConLoss(clustered, labels, 0.07f).ScalarValue();
  float l_mixed = SupConLoss(mixed, labels, 0.07f).ScalarValue();
  EXPECT_LT(l_clustered, l_mixed);
}

TEST(SupConTest, GradientMatchesFiniteDifference) {
  Rng rng(35);
  Tensor feats = RandomTensor({6, 4}, &rng);
  std::vector<int> labels = {0, 1, 0, 2, 1, 0};
  auto f = [&] { return SupConLoss(feats, labels, 0.2f); };
  EXPECT_LT(MaxGradError(f, feats), kGradTol);
}

TEST(SupConTest, GradientWithSomeAnchorsLackingPositives) {
  Rng rng(36);
  Tensor feats = RandomTensor({5, 3}, &rng);
  std::vector<int> labels = {0, 0, 1, 2, 3};  // anchors 2..4 have no positive
  auto f = [&] { return SupConLoss(feats, labels, 0.1f); };
  EXPECT_LT(MaxGradError(f, feats), kGradTol);
}

TEST(SupConTest, ScaleInvarianceFromNormalization) {
  // Internal L2 normalization makes the loss invariant to row scaling.
  Rng rng(37);
  Tensor feats = RandomTensor({4, 3}, &rng, false);
  Tensor scaled = Tensor::FromData(feats.shape(), feats.data());
  for (float& v : scaled.data()) v *= 7.5f;
  std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_NEAR(SupConLoss(feats, labels, 0.07f).ScalarValue(),
              SupConLoss(scaled, labels, 0.07f).ScalarValue(), 1e-4);
}

TEST(SupConTest, GradientDescentReducesLoss) {
  Rng rng(38);
  Tensor feats = RandomTensor({8, 4}, &rng);
  std::vector<int> labels = {0, 1, 0, 1, 0, 1, 0, 1};
  float initial = SupConLoss(feats, labels, 0.1f).ScalarValue();
  for (int step = 0; step < 50; ++step) {
    feats.ZeroGrad();
    Tensor loss = SupConLoss(feats, labels, 0.1f);
    loss.Backward();
    for (size_t i = 0; i < feats.data().size(); ++i) {
      feats.data()[i] -= 0.1f * feats.grad()[i];
    }
  }
  float final = SupConLoss(feats, labels, 0.1f).ScalarValue();
  EXPECT_LT(final, initial);
}

// ---------- numerical-robustness properties ----------

/// All gradient values of `t` are finite.
bool GradAllFinite(const Tensor& t) {
  for (float g : t.grad()) {
    if (!std::isfinite(g)) return false;
  }
  return true;
}

TEST(CrossEntropyTest, FiniteUnderExtremeLogits) {
  // Property: logits anywhere in [-1e4, 1e4] must give a finite loss and
  // finite gradients (the max-shifted softmax overflows without the shift).
  Rng rng(40);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor logits = Tensor::Zeros({4, 5}, true);
    std::vector<int> labels;
    for (float& v : logits.data()) v = rng.UniformFloat(-1e4f, 1e4f);
    for (int b = 0; b < 4; ++b) {
      labels.push_back(static_cast<int>(rng.UniformU32(5)));
    }
    Tensor loss = SoftmaxCrossEntropy(logits, labels);
    ASSERT_TRUE(std::isfinite(loss.ScalarValue())) << "trial " << trial;
    loss.Backward();
    EXPECT_TRUE(GradAllFinite(logits)) << "trial " << trial;
  }
}

TEST(SupConTest, FiniteUnderExtremeFeatures) {
  // Property: huge feature magnitudes are tamed by the internal L2
  // normalization; forward and backward must stay finite.
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor feats = Tensor::Zeros({6, 4}, true);
    for (float& v : feats.data()) v = rng.UniformFloat(-1e4f, 1e4f);
    std::vector<int> labels = {0, 1, 0, 1, 2, 2};
    Tensor loss = SupConLoss(feats, labels, 0.07f);
    ASSERT_TRUE(std::isfinite(loss.ScalarValue())) << "trial " << trial;
    loss.Backward();
    EXPECT_TRUE(GradAllFinite(feats)) << "trial " << trial;
  }
}

TEST(SupConTest, SingleFeatureBatchIsConstantZero) {
  // batch < 2 cannot form a positive pair; the loss must short-circuit to a
  // constant zero instead of computing log-sum-exp over an empty set.
  Tensor one = Tensor::FromData({1, 3}, {1, 2, 3}, true);
  Tensor loss = SupConLoss(one, {0}, 0.07f);
  EXPECT_FLOAT_EQ(loss.ScalarValue(), 0.0f);
  EXPECT_FALSE(loss.requires_grad());
}

TEST(SupConTest, TemperatureSharpensLoss) {
  Rng rng(39);
  Tensor feats = RandomTensor({6, 4}, &rng, false);
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  float lo = SupConLoss(feats, labels, 0.05f).ScalarValue();
  float hi = SupConLoss(feats, labels, 5.0f).ScalarValue();
  // With near-random features, low temperature amplifies mismatch penalties.
  EXPECT_GT(lo, hi);
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
