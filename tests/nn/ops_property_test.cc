// Property-style parameterized sweeps over the nn ops: gradient checks and
// algebraic identities across a grid of shapes, complementing the targeted
// cases in ops_test.cc.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace omnimatch {
namespace nn {
namespace {

constexpr double kGradTol = 3e-2;

Tensor RandomTensor(std::vector<int> shape, Rng* rng,
                    bool requires_grad = true) {
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) v = rng->UniformFloat(-1.0f, 1.0f);
  return t;
}

// ---- MatMul grad over a grid of (M, K, N) ----

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, GradChecks) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  Tensor a = RandomTensor({m, k}, &rng);
  Tensor b = RandomTensor({k, n}, &rng);
  auto f = [&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); };
  EXPECT_LT(MaxGradError(f, a), kGradTol);
  EXPECT_LT(MaxGradError(f, b), kGradTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(4, 1, 4), std::make_tuple(3, 7, 2),
                      std::make_tuple(6, 2, 5)));

// ---- TextConvMaxPool grad over kernel sizes and doc lengths ----

class ConvShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvShapeTest, GradChecks) {
  auto [length, embed, kernel] = GetParam();
  Rng rng(static_cast<uint64_t>(length * 100 + embed * 10 + kernel));
  Tensor x = RandomTensor({2, length, embed}, &rng);
  Tensor w = RandomTensor({3, kernel * embed}, &rng);
  Tensor b = RandomTensor({3}, &rng);
  auto f = [&] {
    Tensor y = TextConvMaxPool(x, w, b, kernel);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(MaxGradError(f, x), kGradTol);
  EXPECT_LT(MaxGradError(f, w), kGradTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapeTest,
    ::testing::Values(std::make_tuple(3, 2, 3),   // doc length == kernel
                      std::make_tuple(5, 2, 3), std::make_tuple(8, 3, 4),
                      std::make_tuple(10, 2, 5), std::make_tuple(6, 4, 2)));

// ---- SupCon grad across batch compositions ----

class SupConCompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(SupConCompositionTest, GradChecks) {
  int batch = GetParam();
  Rng rng(static_cast<uint64_t>(batch));
  Tensor feats = RandomTensor({batch, 3}, &rng);
  std::vector<int> labels(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) labels[static_cast<size_t>(i)] = i % 3;
  auto f = [&] { return SupConLoss(feats, labels, 0.2f); };
  EXPECT_LT(MaxGradError(f, feats), kGradTol);
}

INSTANTIATE_TEST_SUITE_P(Batches, SupConCompositionTest,
                         ::testing::Values(2, 3, 4, 6, 9));

// ---- Algebraic identities ----

class IdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(IdentityTest, AddCommutes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Tensor a = RandomTensor({GetParam(), 3}, &rng, false);
  Tensor b = RandomTensor({GetParam(), 3}, &rng, false);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  for (size_t i = 0; i < ab.data().size(); ++i) {
    EXPECT_FLOAT_EQ(ab.data()[i], ba.data()[i]);
  }
}

TEST_P(IdentityTest, ReluIsIdempotent) {
  Rng rng(static_cast<uint64_t>(GetParam() + 50));
  Tensor x = RandomTensor({GetParam(), 4}, &rng, false);
  Tensor once = Relu(x);
  Tensor twice = Relu(once);
  for (size_t i = 0; i < once.data().size(); ++i) {
    EXPECT_FLOAT_EQ(once.data()[i], twice.data()[i]);
  }
}

TEST_P(IdentityTest, SoftmaxInvariantToRowShift) {
  Rng rng(static_cast<uint64_t>(GetParam() + 100));
  Tensor x = RandomTensor({GetParam(), 5}, &rng, false);
  Tensor shifted = AddScalar(x, 7.5f);
  Tensor sx = Softmax(x);
  Tensor ss = Softmax(shifted);
  for (size_t i = 0; i < sx.data().size(); ++i) {
    EXPECT_NEAR(sx.data()[i], ss.data()[i], 1e-5);
  }
}

TEST_P(IdentityTest, ReshapeRoundTripPreservesValuesAndGrads) {
  int n = GetParam();
  Rng rng(static_cast<uint64_t>(n + 200));
  Tensor x = RandomTensor({n, 6}, &rng);
  Tensor y = Reshape(Reshape(x, {n * 2, 3}), {n, 6});
  for (size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
  SumAll(Mul(y, y)).Backward();
  for (size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_NEAR(x.grad()[i], 2.0f * x.data()[i], 1e-5);
  }
}

TEST_P(IdentityTest, MeanAxis1MatchesMeanRowsPerDoc) {
  int batch = GetParam();
  Rng rng(static_cast<uint64_t>(batch + 300));
  Tensor x = RandomTensor({batch, 4, 3}, &rng, false);
  Tensor batched = MeanAxis1(x);
  for (int b = 0; b < batch; ++b) {
    for (int e = 0; e < 3; ++e) {
      float expect = 0.0f;
      for (int l = 0; l < 4; ++l) {
        expect += x.data()[(static_cast<size_t>(b) * 4 + l) * 3 + e];
      }
      expect /= 4.0f;
      EXPECT_NEAR(batched.At(b, e), expect, 1e-5);
    }
  }
}

TEST_P(IdentityTest, GradReverseLambdaScalesLinearly) {
  int n = GetParam();
  Rng rng(static_cast<uint64_t>(n + 400));
  Tensor x1 = RandomTensor({n}, &rng);
  Tensor x2 = Tensor::FromData({n}, x1.data(), true);
  SumAll(GradReverse(x1, 1.0f)).Backward();
  SumAll(GradReverse(x2, 2.5f)).Backward();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x2.grad()[static_cast<size_t>(i)],
                2.5f * x1.grad()[static_cast<size_t>(i)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IdentityTest, ::testing::Values(1, 2, 4, 8));

// ---- Cross-entropy probability sanity across class counts ----

class CrossEntropyClassTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossEntropyClassTest, UniformLogitsGiveLogC) {
  int classes = GetParam();
  Tensor logits = Tensor::Zeros({3, classes});
  Tensor loss = SoftmaxCrossEntropy(logits, {0, classes - 1, classes / 2});
  EXPECT_NEAR(loss.ScalarValue(), std::log(static_cast<float>(classes)),
              1e-5);
}

TEST_P(CrossEntropyClassTest, GradChecks) {
  int classes = GetParam();
  Rng rng(static_cast<uint64_t>(classes + 500));
  Tensor logits = RandomTensor({3, classes}, &rng);
  std::vector<int> labels = {0, classes - 1, classes / 2};
  EXPECT_LT(
      MaxGradError([&] { return SoftmaxCrossEntropy(logits, labels); },
                   logits),
      kGradTol);
}

INSTANTIATE_TEST_SUITE_P(Classes, CrossEntropyClassTest,
                         ::testing::Values(2, 3, 5, 10));

}  // namespace
}  // namespace nn
}  // namespace omnimatch
