#include "nn/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {
namespace {

constexpr double kGradTol = 2e-2;  // float32 + central differences

Tensor RandomTensor(std::vector<int> shape, Rng* rng,
                    bool requires_grad = true) {
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (float& v : t.data()) v = rng->UniformFloat(-1.0f, 1.0f);
  return t;
}

// ---------- forward-value tests ----------

TEST(OpsForwardTest, AddSubMulValues) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({2}, {10, 20});
  EXPECT_FLOAT_EQ(Add(a, b).data()[1], 22.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).data()[0], -9.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).data()[1], 40.0f);
}

TEST(OpsForwardTest, ScaleAndAddScalar) {
  Tensor a = Tensor::FromData({2}, {1, -2});
  EXPECT_FLOAT_EQ(Scale(a, 3.0f).data()[1], -6.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 5.0f).data()[0], 6.0f);
}

TEST(OpsForwardTest, MatMulKnownValues) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(OpsForwardTest, MatMulNTMatchesExplicitTranspose) {
  Rng rng(1);
  Tensor a = RandomTensor({3, 4}, &rng, false);
  Tensor b = RandomTensor({5, 4}, &rng, false);
  Tensor bt = Tensor::Zeros({4, 5});
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      bt.data()[static_cast<size_t>(j) * 5 + i] = b.At(i, j);
    }
  }
  Tensor c1 = MatMulNT(a, b);
  Tensor c2 = MatMul(a, bt);
  for (int i = 0; i < 15; ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-5);
  }
}

TEST(OpsForwardTest, ReluClampsNegative) {
  Tensor x = Tensor::FromData({4}, {-1, 0, 2, -3});
  Tensor y = Relu(x);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 2.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 0.0f);
}

TEST(OpsForwardTest, SigmoidAtZeroIsHalf) {
  Tensor y = Sigmoid(Tensor::FromData({1}, {0}));
  EXPECT_NEAR(y.ScalarValue(), 0.5f, 1e-6);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Rng rng(2);
  Tensor x = RandomTensor({3, 5}, &rng, false);
  Tensor y = Softmax(x);
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 5; ++c) sum += y.At(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(OpsForwardTest, SoftmaxNumericallyStableWithLargeLogits) {
  Tensor x = Tensor::FromData({1, 3}, {1000, 1001, 1002});
  Tensor y = Softmax(x);
  EXPECT_FALSE(std::isnan(y.data()[0]));
  EXPECT_GT(y.data()[2], y.data()[1]);
}

TEST(OpsForwardTest, ConcatColsLaysOutCorrectly) {
  Tensor a = Tensor::FromData({2, 1}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatCols({a, b});
  EXPECT_EQ(c.dim(1), 3);
  EXPECT_FLOAT_EQ(c.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.At(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 5.0f);
}

TEST(OpsForwardTest, ConcatRowsStacks) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2});
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_FLOAT_EQ(c.At(2, 1), 6.0f);
}

TEST(OpsForwardTest, GatherPicksRows) {
  Tensor table = Tensor::FromData({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = Gather(table, {2, 0, 2});
  EXPECT_EQ(out.dim(0), 3);
  EXPECT_FLOAT_EQ(out.At(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.At(2, 0), 20.0f);
}

TEST(OpsForwardTest, MeanRowsAverages) {
  Tensor x = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor y = MeanRows(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 3.0f);
}

TEST(OpsForwardTest, SumAllAndMeanAll) {
  Tensor x = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(x).ScalarValue(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(x).ScalarValue(), 2.5f);
}

TEST(OpsForwardTest, GradReverseIsIdentityForward) {
  Tensor x = Tensor::FromData({3}, {1, -2, 3}, true);
  Tensor y = GradReverse(x, 0.5f);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsForwardTest, GradReverseNegatesAndScalesGradient) {
  Tensor x = Tensor::FromData({2}, {1, 2}, true);
  Tensor y = SumAll(GradReverse(x, 0.5f));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], -0.5f);
  EXPECT_FLOAT_EQ(x.grad()[1], -0.5f);
}

TEST(OpsForwardTest, DropoutEvalModeIsIdentity) {
  Rng rng(3);
  Tensor x = Tensor::FromData({4}, {1, 2, 3, 4}, true);
  Tensor y = Dropout(x, 0.5f, /*training=*/false, &rng);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsForwardTest, DropoutZeroProbabilityIsIdentity) {
  Rng rng(3);
  Tensor x = Tensor::FromData({4}, {1, 2, 3, 4}, true);
  Tensor y = Dropout(x, 0.0f, /*training=*/true, &rng);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(OpsForwardTest, DropoutMasksAndRescales) {
  Rng rng(5);
  Tensor x = Tensor::Full({1000}, 1.0f, true);
  Tensor y = Dropout(x, 0.4f, /*training=*/true, &rng);
  int zeros = 0;
  double sum = 0.0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5);
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.4, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.12);  // inverted dropout keeps expectation
}

TEST(OpsForwardTest, TextConvMaxPoolHandComputed) {
  // One doc, L=3, E=1, kernel 2, one channel: windows {1,2},{2,3}.
  Tensor x = Tensor::FromData({1, 3, 1}, {1, 2, 3});
  Tensor w = Tensor::FromData({1, 2}, {1, 1});  // sum of window
  Tensor b = Tensor::FromData({1}, {0});
  Tensor y = TextConvMaxPool(x, w, b, 2);
  EXPECT_FLOAT_EQ(y.At(0, 0), 5.0f);  // max(3, 5)
}

TEST(OpsForwardTest, TextConvMaxPoolReluClamps) {
  Tensor x = Tensor::FromData({1, 2, 1}, {-1, -2});
  Tensor w = Tensor::FromData({1, 2}, {1, 1});
  Tensor b = Tensor::FromData({1}, {0});
  Tensor y = TextConvMaxPool(x, w, b, 2);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
}

// ---------- gradient checks ----------

TEST(OpsGradTest, Add) {
  Rng rng(10);
  Tensor a = RandomTensor({3, 2}, &rng);
  Tensor b = RandomTensor({3, 2}, &rng);
  EXPECT_LT(MaxGradError([&] { return SumAll(Mul(Add(a, b), Add(a, b))); }, a),
            kGradTol);
  EXPECT_LT(MaxGradError([&] { return SumAll(Mul(Add(a, b), Add(a, b))); }, b),
            kGradTol);
}

TEST(OpsGradTest, Sub) {
  Rng rng(11);
  Tensor a = RandomTensor({4}, &rng);
  Tensor b = RandomTensor({4}, &rng);
  EXPECT_LT(MaxGradError([&] { return SumAll(Mul(Sub(a, b), Sub(a, b))); }, b),
            kGradTol);
}

TEST(OpsGradTest, MulAndScale) {
  Rng rng(12);
  Tensor a = RandomTensor({5}, &rng);
  Tensor b = RandomTensor({5}, &rng);
  EXPECT_LT(MaxGradError([&] { return SumAll(Scale(Mul(a, b), 1.5f)); }, a),
            kGradTol);
}

TEST(OpsGradTest, MatMul) {
  Rng rng(13);
  Tensor a = RandomTensor({3, 4}, &rng);
  Tensor b = RandomTensor({4, 2}, &rng);
  auto f = [&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); };
  EXPECT_LT(MaxGradError(f, a), kGradTol);
  EXPECT_LT(MaxGradError(f, b), kGradTol);
}

TEST(OpsGradTest, MatMulNT) {
  Rng rng(14);
  Tensor a = RandomTensor({3, 4}, &rng);
  Tensor b = RandomTensor({2, 4}, &rng);
  auto f = [&] { return SumAll(Mul(MatMulNT(a, b), MatMulNT(a, b))); };
  EXPECT_LT(MaxGradError(f, a), kGradTol);
  EXPECT_LT(MaxGradError(f, b), kGradTol);
}

TEST(OpsGradTest, AddRowBroadcast) {
  Rng rng(15);
  Tensor m = RandomTensor({3, 4}, &rng);
  Tensor r = RandomTensor({4}, &rng);
  auto f = [&] {
    return SumAll(Mul(AddRowBroadcast(m, r), AddRowBroadcast(m, r)));
  };
  EXPECT_LT(MaxGradError(f, m), kGradTol);
  EXPECT_LT(MaxGradError(f, r), kGradTol);
}

TEST(OpsGradTest, ReluAwayFromKink) {
  // Keep inputs away from 0 so finite differences are valid.
  Tensor x = Tensor::FromData({4}, {-1.0f, 0.7f, 2.0f, -0.5f}, true);
  EXPECT_LT(MaxGradError([&] { return SumAll(Mul(Relu(x), Relu(x))); }, x),
            kGradTol);
}

TEST(OpsGradTest, TanhAndSigmoid) {
  Rng rng(16);
  Tensor x = RandomTensor({6}, &rng);
  EXPECT_LT(MaxGradError([&] { return SumAll(Mul(Tanh(x), Tanh(x))); }, x),
            kGradTol);
  EXPECT_LT(
      MaxGradError([&] { return SumAll(Mul(Sigmoid(x), Sigmoid(x))); }, x),
      kGradTol);
}

TEST(OpsGradTest, Softmax) {
  Rng rng(17);
  Tensor x = RandomTensor({2, 4}, &rng);
  Tensor w = RandomTensor({2, 4}, &rng, false);
  // Weighted sum so the gradient isn't trivially zero (softmax rows sum to 1).
  EXPECT_LT(MaxGradError([&] { return SumAll(Mul(Softmax(x), w)); }, x),
            kGradTol);
}

TEST(OpsGradTest, ConcatColsAndRows) {
  Rng rng(18);
  Tensor a = RandomTensor({2, 3}, &rng);
  Tensor b = RandomTensor({2, 2}, &rng);
  auto f1 = [&] {
    Tensor c = ConcatCols({a, b});
    return SumAll(Mul(c, c));
  };
  EXPECT_LT(MaxGradError(f1, a), kGradTol);
  EXPECT_LT(MaxGradError(f1, b), kGradTol);

  Tensor c = RandomTensor({1, 3}, &rng);
  auto f2 = [&] {
    Tensor d = ConcatRows({a, c});
    return SumAll(Mul(d, d));
  };
  EXPECT_LT(MaxGradError(f2, c), kGradTol);
}

TEST(OpsGradTest, GatherWithRepeats) {
  Rng rng(19);
  Tensor table = RandomTensor({4, 3}, &rng);
  std::vector<int> ids = {1, 3, 1, 0};  // repeated row 1 must accumulate
  auto f = [&] {
    Tensor g = Gather(table, ids);
    return SumAll(Mul(g, g));
  };
  EXPECT_LT(MaxGradError(f, table), kGradTol);
}

TEST(OpsGradTest, MeanRows) {
  Rng rng(20);
  Tensor x = RandomTensor({3, 4}, &rng);
  auto f = [&] {
    Tensor m = MeanRows(x);
    return SumAll(Mul(m, m));
  };
  EXPECT_LT(MaxGradError(f, x), kGradTol);
}

TEST(OpsGradTest, TextConvMaxPool) {
  Rng rng(21);
  Tensor x = RandomTensor({2, 6, 3}, &rng);
  Tensor w = RandomTensor({4, 2 * 3}, &rng);
  Tensor b = RandomTensor({4}, &rng);
  auto f = [&] {
    Tensor y = TextConvMaxPool(x, w, b, 2);
    return SumAll(Mul(y, y));
  };
  EXPECT_LT(MaxGradError(f, x), kGradTol);
  EXPECT_LT(MaxGradError(f, w), kGradTol);
  EXPECT_LT(MaxGradError(f, b), kGradTol);
}

TEST(OpsGradTest, GradReverseChain) {
  // d/dx sum(GradReverse(x*x, lambda)) = -lambda * 2x.
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, true);
  Tensor y = SumAll(GradReverse(Mul(x, x), 2.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], -4.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -8.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], -12.0f);
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
