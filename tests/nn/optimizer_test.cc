#include "nn/optimizer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace omnimatch {
namespace nn {
namespace {

// Quadratic bowl: loss = sum((x - target)^2). All optimizers must descend.
float QuadraticLoss(Tensor& x, const std::vector<float>& target,
                    bool backward) {
  x.ZeroGrad();
  Tensor loss = MseLoss(x, target);
  if (backward) loss.Backward();
  return loss.ScalarValue();
}

TEST(SgdTest, DescendsQuadratic) {
  Tensor x = Tensor::FromData({3}, {5, -3, 2}, true);
  std::vector<float> target = {1, 1, 1};
  Sgd opt({x}, /*lr=*/0.1f);
  float first = QuadraticLoss(x, target, true);
  for (int i = 0; i < 100; ++i) {
    opt.Step();
    QuadraticLoss(x, target, true);
  }
  float last = QuadraticLoss(x, target, false);
  EXPECT_LT(last, 1e-4f);
  EXPECT_LT(last, first);
}

TEST(SgdTest, MomentumAcceleratesOnConsistentGradient) {
  Tensor a = Tensor::FromData({1}, {10}, true);
  Tensor b = Tensor::FromData({1}, {10}, true);
  Sgd plain({a}, 0.01f, 0.0f);
  Sgd momentum({b}, 0.01f, 0.9f);
  std::vector<float> target = {0};
  for (int i = 0; i < 20; ++i) {
    QuadraticLoss(a, target, true);
    plain.Step();
    QuadraticLoss(b, target, true);
    momentum.Step();
  }
  EXPECT_LT(std::abs(b.data()[0]), std::abs(a.data()[0]));
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::FromData({1}, {1.0f}, true);
  Sgd opt({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  x.ZeroGrad();  // zero gradient; only decay acts
  opt.Step();
  EXPECT_NEAR(x.data()[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(AdamTest, DescendsQuadratic) {
  Tensor x = Tensor::FromData({4}, {3, -4, 5, -6}, true);
  std::vector<float> target = {0, 0, 0, 0};
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    QuadraticLoss(x, target, true);
    opt.Step();
  }
  EXPECT_LT(QuadraticLoss(x, target, false), 1e-3f);
}

TEST(AdadeltaTest, DescendsQuadratic) {
  Tensor x = Tensor::FromData({2}, {4, -4}, true);
  std::vector<float> target = {0, 0};
  Adadelta opt({x}, /*lr=*/1.0f);
  float first = QuadraticLoss(x, target, true);
  for (int i = 0; i < 500; ++i) {
    QuadraticLoss(x, target, true);
    opt.Step();
  }
  float last = QuadraticLoss(x, target, false);
  EXPECT_LT(last, first * 0.5f);
}

TEST(OptimizerTest, ZeroGradClearsAllParams) {
  Tensor x = Tensor::FromData({2}, {1, 2}, true);
  Tensor y = Tensor::FromData({2}, {3, 4}, true);
  SumAll(Add(x, y)).Backward();
  Sgd opt({x, y}, 0.1f);
  opt.ZeroGrad();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
  for (float g : y.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Tensor x = Tensor::FromData({2}, {0, 0}, true);
  x.grad()[0] = 3.0f;
  x.grad()[1] = 4.0f;  // norm 5
  Sgd opt({x}, 0.1f);
  GradClipResult result = opt.ClipGradNorm(1.0f);
  EXPECT_TRUE(result.finite);
  EXPECT_TRUE(result.clipped);
  EXPECT_NEAR(result.norm, 5.0, 1e-4);
  float norm = std::sqrt(x.grad()[0] * x.grad()[0] +
                         x.grad()[1] * x.grad()[1]);
  EXPECT_NEAR(norm, 1.0f, 1e-4);
}

TEST(OptimizerTest, ClipGradNormNoOpBelowThreshold) {
  Tensor x = Tensor::FromData({2}, {0, 0}, true);
  x.grad()[0] = 0.3f;
  x.grad()[1] = 0.4f;  // norm 0.5
  Sgd opt({x}, 0.1f);
  GradClipResult result = opt.ClipGradNorm(1.0f);
  EXPECT_TRUE(result.finite);
  EXPECT_FALSE(result.clipped);
  EXPECT_NEAR(result.norm, 0.5, 1e-6);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.4f);
}

TEST(OptimizerTest, ClipGradNormNoOpOnZeroGradients) {
  // Property: an all-zero gradient has norm 0 < max_norm, and the clip must
  // leave it untouched (the old code risked a 0/0 scale).
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, true);
  x.ZeroGrad();
  Sgd opt({x}, 0.1f);
  GradClipResult result = opt.ClipGradNorm(1.0f);
  EXPECT_TRUE(result.finite);
  EXPECT_FALSE(result.clipped);
  EXPECT_EQ(result.norm, 0.0);
  for (float g : x.grad()) EXPECT_EQ(g, 0.0f);
}

TEST(OptimizerTest, ClipGradNormDetectsNanWithoutPoisoning) {
  // A single NaN gradient value. The hardened clip must (a) report it and
  // (b) NOT multiply the other gradients by a NaN scale — the bug this
  // hardening fixes poisoned EVERY parameter in one step.
  Tensor x = Tensor::FromData({2}, {0, 0}, true);
  Tensor y = Tensor::FromData({2}, {0, 0}, true);
  x.grad()[0] = std::numeric_limits<float>::quiet_NaN();
  x.grad()[1] = 1.0f;
  y.grad()[0] = 30.0f;  // over max_norm: WOULD be scaled if healthy
  y.grad()[1] = 40.0f;
  Sgd opt({x, y}, 0.1f);
  GradClipResult result = opt.ClipGradNorm(1.0f);
  EXPECT_FALSE(result.finite);
  EXPECT_FALSE(result.clipped);
  // Healthy tensors keep their raw gradients: no NaN spread, no rescale.
  EXPECT_FLOAT_EQ(y.grad()[0], 30.0f);
  EXPECT_FLOAT_EQ(y.grad()[1], 40.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
}

TEST(OptimizerTest, ClipGradNormDetectsInfNorm) {
  Tensor x = Tensor::FromData({1}, {0}, true);
  x.grad()[0] = std::numeric_limits<float>::infinity();
  Sgd opt({x}, 0.1f);
  GradClipResult result = opt.ClipGradNorm(1.0f);
  EXPECT_FALSE(result.finite);
}

TEST(OptimizerTest, LearningRateAccessors) {
  Tensor x = Tensor::FromData({1}, {0}, true);
  Sgd sgd({x}, 0.1f);
  Adam adam({x}, 0.01f);
  Adadelta adadelta({x}, 1.0f);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.1f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.01f);
  EXPECT_FLOAT_EQ(adadelta.lr(), 1.0f);
  // set_lr is how the guard backs off after a divergence; it must act
  // through the Optimizer interface.
  Optimizer* opt = &adadelta;
  opt->set_lr(0.5f);
  EXPECT_FLOAT_EQ(opt->lr(), 0.5f);
}

TEST(TrainingIntegrationTest, LinearRegressionConverges) {
  // Fit y = 2x + 1 with a 1-unit Linear layer trained by Adam.
  Rng rng(42);
  Linear model(1, 1, &rng);
  Adam opt(model.Parameters(), 0.05f);
  std::vector<float> xs = {-2, -1, 0, 1, 2, 3};
  std::vector<float> ys;
  for (float v : xs) ys.push_back(2.0f * v + 1.0f);
  Tensor x = Tensor::FromData({6, 1}, xs);
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.ZeroGrad();
    Tensor pred = model.Forward(x);
    Tensor loss = MseLoss(pred, ys);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(model.weight().data()[0], 2.0f, 0.05f);
  EXPECT_NEAR(model.bias().data()[0], 1.0f, 0.05f);
}

TEST(TrainingIntegrationTest, MlpLearnsXor) {
  Rng rng(7);
  Mlp mlp({2, 8, 2}, 0.0f, &rng);
  Adam opt(mlp.Parameters(), 0.05f);
  Tensor x = Tensor::FromData({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int> labels = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 500; ++epoch) {
    opt.ZeroGrad();
    Tensor logits = mlp.Forward(x);
    SoftmaxCrossEntropy(logits, labels).Backward();
    opt.Step();
  }
  mlp.set_training(false);
  Tensor logits = mlp.Forward(x);
  for (int i = 0; i < 4; ++i) {
    int pred = logits.At(i, 1) > logits.At(i, 0) ? 1 : 0;
    EXPECT_EQ(pred, labels[i]) << "sample " << i;
  }
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
