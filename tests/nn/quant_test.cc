#include "nn/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "nn/gemm.h"
#include "nn/gemm/int8_gemm.h"
#include "nn/tensor.h"

namespace omnimatch {
namespace nn {
namespace quant {
namespace {

std::vector<int8_t> RandomInt8(size_t n, Rng* rng) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(rng->UniformInt(-127, 127));
  }
  return v;
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(-1.0f, 1.0f);
  return v;
}

/// Ground truth for the int8 kernels: naive triple loop, exact int32.
void ReferenceGemmS8NT(const int8_t* a, const int8_t* b, int32_t* c, int m,
                       int k, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(a[static_cast<size_t>(i) * k + p]) *
               static_cast<int32_t>(b[static_cast<size_t>(j) * k + p]);
      }
      c[static_cast<size_t>(i) * n + j] = acc;
    }
  }
}

/// Every compiled flavor, scalar first. Shapes below include K values that
/// exercise the 64/32/16-byte SIMD chunks AND their scalar tails.
std::vector<IsaLevel> CompiledLevels() {
  std::vector<IsaLevel> levels = {IsaLevel::kScalar};
  const IsaLevel best = int8gemm::BestCompiledIsa();
  for (IsaLevel l : {IsaLevel::kNeon, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    if (static_cast<int>(l) <= static_cast<int>(best)) levels.push_back(l);
  }
  return levels;
}

/// Levels the host can actually EXECUTE (compiled and cpuid-approved) —
/// the set the equivalence tests may safely run.
std::vector<IsaLevel> RunnableLevels() {
  std::vector<IsaLevel> levels;
  for (IsaLevel l : CompiledLevels()) {
    if (static_cast<int>(l) <= static_cast<int>(DetectedIsa())) {
      levels.push_back(l);
    }
  }
  return levels;
}

const int kDims[] = {1, 3, 17, 48, 65, 192};

TEST(Int8GemmTest, ScalarMatchesReferenceOnAllShapes) {
  Rng rng(21);
  for (int m : {1, 3, 7}) {
    for (int k : kDims) {
      for (int n : {1, 5, 48}) {
        std::vector<int8_t> a = RandomInt8(static_cast<size_t>(m) * k, &rng);
        std::vector<int8_t> b = RandomInt8(static_cast<size_t>(n) * k, &rng);
        std::vector<int32_t> want(static_cast<size_t>(m) * n, -1);
        std::vector<int32_t> got(static_cast<size_t>(m) * n, -1);
        ReferenceGemmS8NT(a.data(), b.data(), want.data(), m, k, n);
        int8gemm::isa_scalar::GemmS8NT(a.data(), b.data(), got.data(), m, k,
                                       n);
        EXPECT_EQ(want, got) << "shape " << m << "x" << k << "x" << n;
      }
    }
  }
}

// The cross-ISA contract the whole quantized path rests on: every kernel
// flavor this host can run produces EXACTLY the scalar flavor's int32
// output, bit for bit, on shapes covering full vector chunks and tails.
TEST(Int8GemmTest, AllRunnableIsasBitIdenticalToScalar) {
  Rng rng(22);
  for (int m : {1, 4, 9}) {
    for (int k : kDims) {
      for (int n : {1, 5, 48}) {
        std::vector<int8_t> a = RandomInt8(static_cast<size_t>(m) * k, &rng);
        std::vector<int8_t> b = RandomInt8(static_cast<size_t>(n) * k, &rng);
        std::vector<int32_t> scalar_out(static_cast<size_t>(m) * n, 0);
        int8gemm::isa_scalar::GemmS8NT(a.data(), b.data(), scalar_out.data(),
                                       m, k, n);
        for (IsaLevel level : RunnableLevels()) {
          std::vector<int32_t> got(static_cast<size_t>(m) * n, -7);
          int8gemm::SelectKernel(level)(a.data(), b.data(), got.data(), m, k,
                                        n);
          EXPECT_EQ(scalar_out, got)
              << IsaName(level) << " diverges from scalar on shape " << m
              << "x" << k << "x" << n;
        }
      }
    }
  }
}

TEST(Int8GemmTest, SaturatedInputsDoNotOverflow) {
  // Worst case |a|=|b|=127 over the kernel's max K: 127*127*65536 fits
  // int32 with headroom; every flavor must agree there too.
  const int k = int8gemm::kMaxK;
  std::vector<int8_t> a(static_cast<size_t>(k), 127);
  std::vector<int8_t> b(static_cast<size_t>(k), -127);
  for (IsaLevel level : RunnableLevels()) {
    int32_t got = 0;
    int8gemm::SelectKernel(level)(a.data(), b.data(), &got, 1, k, 1);
    EXPECT_EQ(got, -127 * 127 * k) << IsaName(level);
  }
}

TEST(Int8GemmTest, SelectKernelClampsAboveBestCompiled) {
  // Asking for a flavor the build does not carry must fall back to the
  // widest compiled one, never return null or a wider-than-compiled path.
  EXPECT_EQ(int8gemm::SelectKernel(IsaLevel::kAvx512),
            int8gemm::SelectKernel(int8gemm::BestCompiledIsa()));
  EXPECT_NE(int8gemm::SelectKernel(IsaLevel::kScalar), nullptr);
}

TEST(CpuDispatchTest, ResolveIsaHonorsAndClampsOverride) {
  using internal::ResolveIsa;
  // No override: the detected level stands.
  EXPECT_EQ(ResolveIsa(nullptr, IsaLevel::kAvx512), IsaLevel::kAvx512);
  EXPECT_EQ(ResolveIsa("", IsaLevel::kAvx2), IsaLevel::kAvx2);
  // Forcing DOWN is allowed (portable CI lane).
  EXPECT_EQ(ResolveIsa("scalar", IsaLevel::kAvx512), IsaLevel::kScalar);
  EXPECT_EQ(ResolveIsa("avx2", IsaLevel::kAvx512), IsaLevel::kAvx2);
  // Forcing UP would SIGILL: clamps to detected.
  EXPECT_EQ(ResolveIsa("avx512", IsaLevel::kScalar), IsaLevel::kScalar);
  EXPECT_EQ(ResolveIsa("avx2", IsaLevel::kScalar), IsaLevel::kScalar);
  // Cross-family request degrades to scalar, not to an x86 level.
  EXPECT_EQ(ResolveIsa("neon", IsaLevel::kAvx512), IsaLevel::kScalar);
  // Garbage is ignored.
  EXPECT_EQ(ResolveIsa("pentium", IsaLevel::kAvx2), IsaLevel::kAvx2);
}

TEST(CpuDispatchTest, IsaNamesRoundTrip) {
  for (IsaLevel l : {IsaLevel::kScalar, IsaLevel::kNeon, IsaLevel::kAvx2,
                     IsaLevel::kAvx512}) {
    IsaLevel parsed;
    ASSERT_TRUE(ParseIsaName(IsaName(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
  IsaLevel unused;
  EXPECT_FALSE(ParseIsaName("sse9", &unused));
}

TEST(QuantizeTest, ActivationRoundTripBoundedByHalfScale) {
  Rng rng(23);
  const float scale = 0.01f;
  std::vector<float> x(1000);
  for (float& v : x) v = rng.UniformFloat(-1.27f, 1.27f);
  std::vector<int8_t> q(x.size());
  QuantizeActivations(x.data(), x.size(), scale, q.data());
  for (size_t i = 0; i < x.size(); ++i) {
    // In-range values round to the nearest grid point: error <= scale/2.
    EXPECT_LE(std::fabs(Dequantize(q[i], scale) - x[i]), scale / 2 + 1e-7f)
        << "x=" << x[i];
  }
}

TEST(QuantizeTest, ActivationClampsOutOfRangeSymmetrically) {
  const float scale = 0.5f;
  const float x[] = {1000.0f, -1000.0f, 63.5f, -63.5f};
  int8_t q[4];
  QuantizeActivations(x, 4, scale, q);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -127);  // symmetric: never -128
  EXPECT_EQ(q[2], 127);
  EXPECT_EQ(q[3], -127);
}

TEST(QuantizeTest, ZeroScaleQuantizesToZero) {
  const float x[] = {1.0f, -2.0f, 3.0f};
  int8_t q[3] = {9, 9, 9};
  QuantizeActivations(x, 3, 0.0f, q);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(QuantizeTest, WeightsPerChannelScalesAndPacking) {
  // W[in=2, out=3], column n is output channel n.
  Tensor w = Tensor::FromData({2, 3}, {1.0f, -2.0f, 0.0f,   //
                                       0.5f, 4.0f, 0.0f});
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  ASSERT_EQ(q.in, 2);
  ASSERT_EQ(q.out, 3);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scales[1], 4.0f / 127.0f);
  EXPECT_FLOAT_EQ(q.scales[2], 0.0f);  // all-zero channel
  // NT packing: row n = channel n = column n of W.
  EXPECT_EQ(q.packed[0 * 2 + 0], 127);   // 1.0 / (1/127)
  EXPECT_EQ(q.packed[0 * 2 + 1], 64);    // 0.5 * 127 = 63.5, round-to-even
  EXPECT_EQ(q.packed[1 * 2 + 0], -64);   // -2/4 * 127 = -63.5
  EXPECT_EQ(q.packed[1 * 2 + 1], 127);
  EXPECT_EQ(q.packed[2 * 2 + 0], 0);
  EXPECT_EQ(q.packed[2 * 2 + 1], 0);
}

TEST(QuantizeTest, WeightRoundTripBoundedByHalfScalePerChannel) {
  Rng rng(24);
  const int in = 48, out = 16;
  Tensor w = Tensor::FromData({in, out},
                              RandomVec(static_cast<size_t>(in) * out, &rng));
  QuantizedWeights q = QuantizeWeightsPerChannel(w);
  for (int n = 0; n < out; ++n) {
    for (int k = 0; k < in; ++k) {
      const float orig = w.data()[static_cast<size_t>(k) * out + n];
      const float rt = Dequantize(q.packed[static_cast<size_t>(n) * in + k],
                                  q.scales[static_cast<size_t>(n)]);
      EXPECT_LE(std::fabs(rt - orig),
                q.scales[static_cast<size_t>(n)] / 2 + 1e-7f);
    }
  }
}

TEST(CalibratorTest, FullQuantileUsesExactMax) {
  ActivationCalibrator calib;
  const float x[] = {0.1f, -0.4f, 0.25f};
  calib.Observe(x, 3);
  EXPECT_FLOAT_EQ(calib.max_abs(), 0.4f);
  // quantile 1.0 clamps the bucket bound to the exact observed max.
  EXPECT_FLOAT_EQ(calib.ComputeScale(1.0), 0.4f / 127.0f);
}

TEST(CalibratorTest, QuantileClipsOutliers) {
  ActivationCalibrator calib;
  std::vector<float> x(999, 0.5f);
  x.push_back(1e5f);  // one wild outlier
  calib.Observe(x.data(), x.size());
  const float scale = calib.ComputeScale(0.999);
  // The 99.9% clip lands near 0.5, nowhere near the outlier.
  EXPECT_LT(scale, 1.0f / 127.0f);
  EXPECT_GT(scale, 0.4f / 127.0f);
}

TEST(CalibratorTest, EmptyOrZeroObservationsGiveZeroScale) {
  ActivationCalibrator calib;
  EXPECT_FLOAT_EQ(calib.ComputeScale(1.0), 0.0f);
  const float zeros[] = {0.0f, 0.0f};
  calib.Observe(zeros, 2);
  EXPECT_FLOAT_EQ(calib.ComputeScale(1.0), 0.0f);
}

TEST(QuantPlanTest, ShouldQuantizeNodeAppliesShapeFloors) {
  QuantOptions options;
  options.min_k = 16;
  options.min_n = 4;
  std::string reason;
  EXPECT_TRUE(ShouldQuantizeNode(options, 16, 4, &reason));
  EXPECT_FALSE(ShouldQuantizeNode(options, 15, 4, &reason));
  EXPECT_NE(reason.find("min_k"), std::string::npos);
  EXPECT_FALSE(ShouldQuantizeNode(options, 16, 3, &reason));
  EXPECT_NE(reason.find("min_n"), std::string::npos);
  EXPECT_TRUE(ShouldQuantizeNode(options, 16, 4, nullptr));
}

/// Builds a random QuantizedLinear plus its float twin's expected output.
struct LinearFixture {
  Tensor weight;
  Tensor bias;
  std::vector<float> x;
  std::vector<float> expect;  // float32 FusedLinearForward output
  float input_scale = 0.0f;
  int rows, in, out;

  LinearFixture(int rows, int in, int out, bool relu, Rng* rng)
      : rows(rows), in(in), out(out) {
    weight = Tensor::FromData({in, out},
                              RandomVec(static_cast<size_t>(in) * out, rng));
    bias = Tensor::FromData({out}, RandomVec(static_cast<size_t>(out), rng));
    x = RandomVec(static_cast<size_t>(rows) * in, rng);
    ActivationCalibrator calib;
    calib.Observe(x.data(), x.size());
    input_scale = calib.ComputeScale(1.0);
    expect.assign(static_cast<size_t>(rows) * out, 0.0f);
    FusedLinearForward(x.data(), weight.data().data(), bias.data().data(),
                       expect.data(), rows, in, out, relu);
  }
};

TEST(QuantizedLinearTest, TracksFloatReferenceWithinQuantizationError) {
  Rng rng(25);
  LinearFixture fx(7, 48, 16, /*relu=*/false, &rng);
  QuantizedLinear layer(fx.weight, fx.bias, fx.input_scale, /*relu=*/false);
  std::vector<float> got(fx.expect.size(), 0.0f);
  layer.Forward(fx.x.data(), fx.rows, got.data());
  // Error budget: each of K products carries one half-step of activation
  // error and one of weight error; a loose linear bound suffices here (the
  // serving-level RMSE gate is the real accuracy test).
  float max_w = 0.0f;
  for (float w : fx.weight.data()) max_w = std::max(max_w, std::fabs(w));
  const float budget = static_cast<float>(fx.in) *
                       (fx.input_scale * max_w + 1.0f / 127.0f);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_LE(std::fabs(got[i] - fx.expect[i]), budget) << "i=" << i;
  }
}

TEST(QuantizedLinearTest, BitIdenticalAcrossRunnableIsas) {
  Rng rng(26);
  LinearFixture fx(9, 192, 96, /*relu=*/true, &rng);
  QuantizedLinear layer(fx.weight, fx.bias, fx.input_scale, /*relu=*/true);
  std::vector<float> scalar_out(static_cast<size_t>(fx.rows) * fx.out, 0.0f);
  layer.ForwardWithKernel(fx.x.data(), fx.rows, scalar_out.data(),
                          int8gemm::SelectKernel(IsaLevel::kScalar));
  for (IsaLevel level : RunnableLevels()) {
    std::vector<float> got(scalar_out.size(), -1.0f);
    layer.ForwardWithKernel(fx.x.data(), fx.rows, got.data(),
                            int8gemm::SelectKernel(level));
    EXPECT_EQ(scalar_out, got) << IsaName(level);
  }
}

TEST(QuantizedLinearTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(27);
  LinearFixture fx(64, 192, 96, /*relu=*/true, &rng);
  QuantizedLinear layer(fx.weight, fx.bias, fx.input_scale, /*relu=*/true);
  const int before = GetNumThreads();
  SetNumThreads(1);
  std::vector<float> serial(static_cast<size_t>(fx.rows) * fx.out, 0.0f);
  layer.Forward(fx.x.data(), fx.rows, serial.data());
  SetNumThreads(4);
  std::vector<float> parallel(serial.size(), -1.0f);
  layer.Forward(fx.x.data(), fx.rows, parallel.data());
  SetNumThreads(before);
  EXPECT_EQ(serial, parallel);
}

TEST(QuantizedLinearTest, ReluEpilogueMatchesFloatSemantics) {
  // A layer whose pre-activation is exactly zero must produce +0.0f under
  // ReLU, matching FusedLinearForward's expression.
  Tensor w = Tensor::FromData({1, 1}, {1.0f});
  Tensor b = Tensor::FromData({1}, {0.0f});
  QuantizedLinear layer(w, b, 0.1f, /*relu=*/true);
  const float x = 0.0f;
  float y = -1.0f;
  layer.Forward(&x, 1, &y);
  EXPECT_EQ(y, 0.0f);
  EXPECT_FALSE(std::signbit(y));
}

}  // namespace
}  // namespace quant
}  // namespace nn
}  // namespace omnimatch
