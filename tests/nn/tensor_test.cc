#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace omnimatch {
namespace nn {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_FALSE(t.requires_grad());
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, FromDataPreservesContents) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At(0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.At(1, 1), 4.0f);
}

TEST(TensorTest, ScalarValue) {
  Tensor t = Tensor::Scalar(3.5f);
  EXPECT_EQ(t.ScalarValue(), 3.5f);
}

TEST(TensorTest, NegativeAxisIndexing) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, DefaultHandleUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, HandleSharesStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;  // cheap handle copy
  b.data()[0] = 7.0f;
  EXPECT_EQ(a.data()[0], 7.0f);
}

TEST(TensorTest, DetachCopyIsIndependent) {
  Tensor a = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor b = a.DetachCopy();
  EXPECT_FALSE(b.requires_grad());
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, BackwardThroughChainAccumulates) {
  // y = sum(2 * (x + x)) = 4 * sum(x); dy/dx = 4.
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor y = SumAll(Scale(Add(x, x), 2.0f));
  EXPECT_FLOAT_EQ(y.ScalarValue(), 24.0f);
  y.Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 4.0f);
}

TEST(TensorTest, BackwardTwiceAccumulatesGradients) {
  Tensor x = Tensor::FromData({2}, {1, 1}, /*requires_grad=*/true);
  SumAll(x).Backward();
  SumAll(x).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::FromData({2}, {1, 1}, /*requires_grad=*/true);
  SumAll(x).Backward();
  x.ZeroGrad();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(TensorTest, NoGradGraphWhenNotRequired) {
  Tensor x = Tensor::FromData({2}, {1, 2});  // requires_grad = false
  Tensor y = Add(x, x);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = sum(x*x + x*x): both branches share x; dy/dx = 4x.
  Tensor x = Tensor::FromData({2}, {3, -2}, /*requires_grad=*/true);
  Tensor a = Mul(x, x);
  Tensor b = Mul(x, x);
  Tensor y = SumAll(Add(a, b));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -8.0f);
}

TEST(TensorTest, DeepChainBackwardDoesNotOverflowStack) {
  Tensor x = Tensor::FromData({1}, {1.0f}, /*requires_grad=*/true);
  Tensor h = x;
  for (int i = 0; i < 20000; ++i) h = AddScalar(h, 0.0f);
  Tensor y = SumAll(h);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

}  // namespace
}  // namespace nn
}  // namespace omnimatch
