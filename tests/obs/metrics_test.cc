#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace omnimatch {
namespace obs {
namespace {

// The registry is process-global; tests use unique instrument names and
// restore the enable switch so they compose in any order.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { EnableMetrics(false); }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST_F(MetricsTest, CounterExactUnderConcurrency) {
  // Sharded relaxed increments must never lose a count: the total across
  // kThreads x kIncrements concurrent writers is exact, not approximate.
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kIncrements);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-2.0);
  EXPECT_EQ(g.Value(), -2.0);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketsInclusiveUpperBounds) {
  Histogram h({10.0, 100.0});
  h.Observe(5.0);     // <= 10
  h.Observe(10.0);    // <= 10 (inclusive)
  h.Observe(11.0);    // <= 100
  h.Observe(100.0);   // <= 100
  h.Observe(1000.0);  // +inf tail
  std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(h.Count(), 5);
  EXPECT_DOUBLE_EQ(h.Sum(), 1126.0);
}

TEST_F(MetricsTest, HistogramExactUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  Histogram h({1.0, 2.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) h.Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t expected = int64_t{kThreads} * kObservations;
  EXPECT_EQ(h.Count(), expected);
  // Every observation is exactly 1.0, so the CAS-accumulated sum is exact.
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(expected));
  EXPECT_EQ(h.BucketCounts()[0], expected);
}

TEST_F(MetricsTest, HistogramResetKeepsBounds) {
  Histogram h({10.0});
  h.Observe(1.0);
  h.Observe(100.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* c1 = registry.GetCounter("metrics_test.stable");
  Counter* c2 = registry.GetCounter("metrics_test.stable");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = registry.GetHistogram("metrics_test.stable_h", {1.0});
  // Re-registration with different bounds keeps the original instrument.
  Histogram* h2 = registry.GetHistogram("metrics_test.stable_h", {99.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 1u);
  EXPECT_DOUBLE_EQ(h1->bounds()[0], 1.0);
}

TEST_F(MetricsTest, RegistryConcurrentGetSameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  registry.GetCounter("metrics_test.concurrent_get")->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.GetCounter("metrics_test.concurrent_get")->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("metrics_test.concurrent_get")->Value(),
            int64_t{kThreads} * kIncrements);
}

TEST_F(MetricsTest, EnableSwitchRoundTrips) {
  EXPECT_FALSE(MetricsEnabled());  // off by default
  EnableMetrics(true);
  EXPECT_TRUE(MetricsEnabled());
  EnableMetrics(false);
  EXPECT_FALSE(MetricsEnabled());
}

TEST_F(MetricsTest, RenderJsonLinesShapes) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("metrics_test.render_c")->Reset();
  registry.GetCounter("metrics_test.render_c")->Add(7);
  registry.GetGauge("metrics_test.render_g")->Set(2.5);
  Histogram* h = registry.GetHistogram("metrics_test.render_h", {10.0});
  h->Reset();
  h->Observe(3.0);
  h->Observe(30.0);
  std::string jsonl = registry.RenderJsonLines();
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":"
                       "\"metrics_test.render_c\",\"value\":7}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"gauge\",\"name\":"
                       "\"metrics_test.render_g\",\"value\":2.5}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"histogram\",\"name\":"
                       "\"metrics_test.render_h\",\"count\":2,\"sum\":33,"
                       "\"buckets\":[{\"le\":10,\"count\":1},"
                       "{\"le\":\"inf\",\"count\":1}]}"),
            std::string::npos);
  // One standalone JSON object per line.
  size_t pos = 0, lines = 0;
  while ((pos = jsonl.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(jsonl.empty() ? 0 : jsonl.back(), '\n');
  EXPECT_GE(lines, 3u);
}

TEST_F(MetricsTest, WriteJsonLinesFailsOnBadPath) {
  EXPECT_FALSE(MetricsRegistry::Global().WriteJsonLines(
      "/nonexistent_dir_for_metrics_test/out.jsonl"));
}

TEST_F(MetricsTest, LatencyBoundsAreFineGrainedAndAscending) {
  std::vector<double> bounds = Histogram::LatencyBoundsNs();
  ASSERT_EQ(bounds.size(), 7u * 24u + 1u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e3);
  EXPECT_NEAR(bounds.back(), 1e10, 1e10 * 1e-9);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
    // ~10% relative resolution throughout (ratio 10^(1/24)).
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(10.0, 1.0 / 24.0), 1e-9);
  }
}

TEST_F(MetricsTest, HistogramQuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 0.0);  // empty
  // 10 observations uniform in (10, 20]: the bucket holds everything.
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  // All mass in bucket (10, 20]: q=0.5 lands at its midpoint.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 20.0);
  EXPECT_LE(HistogramQuantile(h, 0.0), 11.0);
}

TEST_F(MetricsTest, HistogramQuantileAcrossBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  // 2 obs in (0,1], 1 in (1,2], 1 in (2,4].
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(3.0);
  // Rank 2 of 4 = the upper edge of the first bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 1.0);
  // Rank 3 of 4 = the (1,2] bucket's single observation → its upper edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.75), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 4.0);
  // Tail bucket observations clamp to the largest finite bound.
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 4.0);
}

// Regression: the clamped +inf-tail return used to be indistinguishable
// from a genuine estimate at the last finite edge, so latency gates
// compared a lower bound against their budget and passed runs whose true
// tail was unbounded. The checked variant must flag exactly the quantiles
// that land in the tail.
TEST_F(MetricsTest, HistogramQuantileCheckedFlagsTailOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  bool overflow = true;
  EXPECT_DOUBLE_EQ(HistogramQuantileChecked(h, 0.99, &overflow), 0.0);
  EXPECT_FALSE(overflow) << "empty histogram is not a tail overflow";

  for (int i = 0; i < 99; ++i) h.Observe(0.5);
  h.Observe(100.0);  // one observation beyond the last finite bound
  // p50 is nowhere near the tail: clean interpolated estimate, no flag.
  const double p50 = HistogramQuantileChecked(h, 0.5, &overflow);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  EXPECT_FALSE(overflow);
  // p999 lands on the tail observation: the value clamps to the last
  // finite bound and the flag must fire.
  const double clamped = HistogramQuantileChecked(h, 0.999, &overflow);
  EXPECT_DOUBLE_EQ(clamped, 4.0);
  EXPECT_TRUE(overflow);
  // The unchecked wrapper returns the same clamped value (display use).
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.999), clamped);
}

TEST_F(MetricsTest, HistogramQuantileCheckedAllMassInTail) {
  Histogram h({1.0});
  h.Observe(50.0);
  bool overflow = false;
  EXPECT_DOUBLE_EQ(HistogramQuantileChecked(h, 0.5, &overflow), 1.0);
  EXPECT_TRUE(overflow) << "every quantile of an all-tail histogram is a "
                           "lower bound";
}

}  // namespace
}  // namespace obs
}  // namespace omnimatch
