#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace omnimatch {
namespace obs {
namespace {

// Tracing state is process-global; every test starts from a clean, disabled
// trace and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EnableTracing(false);
    EnableMetrics(false);
    ClearTrace();
  }
  void TearDown() override {
    EnableTracing(false);
    EnableMetrics(false);
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  {
    OM_TRACE_SPAN("trace_test.noop");
  }
  EXPECT_TRUE(ExportSpans().empty());
  EXPECT_EQ(DroppedSpans(), 0u);
}

TEST_F(TraceTest, NestedSpansAreContainedAndOrdered) {
  EnableTracing(true);
  {
    OM_TRACE_SPAN("trace_test.outer");
    {
      OM_TRACE_SPAN("trace_test.inner");
    }
  }
  std::vector<ExportedSpan> spans = ExportSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: the outer span opened first.
  EXPECT_STREQ(spans[0].name, "trace_test.outer");
  EXPECT_STREQ(spans[1].name, "trace_test.inner");
  // Proper nesting: the inner span lies inside the outer interval.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[1].start_ns);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
}

TEST_F(TraceTest, SpansOpenedWhileDisabledAreNotRecorded) {
  // The record decision is taken at construction time.
  TraceSpan* span = new TraceSpan("trace_test.late_enable");
  EnableTracing(true);
  delete span;
  EXPECT_TRUE(ExportSpans().empty());
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  EnableTracing(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { OM_TRACE_SPAN("trace_test.worker"); });
  }
  for (std::thread& t : threads) t.join();
  std::vector<ExportedSpan> spans = ExportSpans();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads));
  std::vector<int> tids;
  for (const ExportedSpan& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(TraceTest, RingWrapCountsDroppedSpans) {
  EnableTracing(true);
  constexpr int kRecorded = (1 << 16) + 100;
  for (int i = 0; i < kRecorded; ++i) {
    OM_TRACE_SPAN("trace_test.wrap");
  }
  EXPECT_EQ(ExportSpans().size(), size_t{1} << 16);
  EXPECT_EQ(DroppedSpans(), 100u);
}

TEST_F(TraceTest, TimedSpanFeedsHistogramWhenMetricsEnabled) {
  EnableMetrics(true);
  Histogram* hist = MetricsRegistry::Global().GetHistogram(
      "trace_test.span_ns", {1e12});
  hist->Reset();
  {
    OM_TRACE_SPAN_TIMED("trace_test.timed", hist);
  }
  EXPECT_EQ(hist->Count(), 1);
  EXPECT_GE(hist->Sum(), 0.0);
  // Tracing stayed off: the duration was observed but no span recorded.
  EXPECT_TRUE(ExportSpans().empty());
}

TEST_F(TraceTest, TimedSpanSkipsHistogramWhenMetricsDisabled) {
  Histogram* hist = MetricsRegistry::Global().GetHistogram(
      "trace_test.span_off_ns", {1e12});
  hist->Reset();
  {
    OM_TRACE_SPAN_TIMED("trace_test.timed_off", hist);
  }
  EXPECT_EQ(hist->Count(), 0);
}

// Minimal structural JSON checker: verifies balanced braces/brackets and
// quote pairing outside strings — enough to catch malformed emission
// without a JSON library.
bool JsonStructurallyValid(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  EnableTracing(true);
  {
    OM_TRACE_SPAN("trace_test.chrome_a");
    OM_TRACE_SPAN("trace_test.chrome_b");
  }
  std::string json = RenderChromeTrace();
  EXPECT_TRUE(JsonStructurallyValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace_test.chrome_a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace_test.chrome_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"dropped_spans\":0}"),
            std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRoundTripsThroughFile) {
  EnableTracing(true);
  {
    OM_TRACE_SPAN("trace_test.file");
  }
  std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_TRUE(JsonStructurallyValid(contents.str()));
  EXPECT_NE(contents.str().find("trace_test.file"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceFailsOnBadPath) {
  EXPECT_FALSE(WriteChromeTrace("/nonexistent_dir_for_trace_test/t.json"));
}

}  // namespace
}  // namespace obs
}  // namespace omnimatch
