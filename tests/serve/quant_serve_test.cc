// Quantized serving tests: the --quant snapshot mode must build a sane
// per-node plan, stay within the accuracy gate against the float32 scorer,
// and be deterministic across calls and thread counts. The float path must
// be byte-identical with quantization off (covered by serve_test's
// BitIdenticalToTrainerEvalPath against the same snapshot machinery).

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "serve/scorer.h"
#include "serve/snapshot.h"

namespace omnimatch {
namespace serve {
namespace {

core::OmniMatchConfig TinyModel() {
  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.select_best_epoch = false;
  config.seed = 31;
  return config;
}

/// One trained world with BOTH a float and a quantized snapshot of the same
/// checkpoint, shared across the suite (training dominates the cost).
struct QuantWorld {
  data::CrossDomainDataset cross;
  data::ColdStartSplit split;
  core::OmniMatchConfig config;
  std::unique_ptr<core::OmniMatchTrainer> trainer;
  std::shared_ptr<const ModelSnapshot> float_snapshot;
  std::shared_ptr<const ModelSnapshot> quant_snapshot;
};

QuantWorld* BuildWorld() {
  auto* w = new QuantWorld();
  data::SyntheticConfig world_config;
  world_config.num_users = 60;
  world_config.items_per_domain = 30;
  world_config.mean_reviews_per_user = 5;
  world_config.seed = 23;
  data::SyntheticWorld world(world_config);
  w->cross = world.MakePair("Books", "Movies");
  Rng split_rng(7);
  w->split = data::MakeColdStartSplit(w->cross, &split_rng);
  w->config = TinyModel();

  w->trainer = std::make_unique<core::OmniMatchTrainer>(w->config, &w->cross,
                                                        w->split);
  EXPECT_TRUE(w->trainer->Prepare().ok());
  w->trainer->Train();
  const std::string path = testing::TempDir() + "/quant_serve_test.omck";
  EXPECT_TRUE(w->trainer->SaveCheckpoint(path).ok());

  Result<std::shared_ptr<const ModelSnapshot>> plain =
      ModelSnapshot::Load(w->config, &w->cross, w->split, path);
  EXPECT_TRUE(plain.ok()) << plain.status().ToString();
  w->float_snapshot = plain.value();

  ModelSnapshot::Options options;
  options.quantize = true;
  Result<std::shared_ptr<const ModelSnapshot>> quant =
      ModelSnapshot::Load(w->config, &w->cross, w->split, path, options);
  EXPECT_TRUE(quant.ok()) << quant.status().ToString();
  w->quant_snapshot = quant.value();
  return w;
}

QuantWorld& World() {
  static QuantWorld* world = BuildWorld();
  return *world;
}

std::vector<ScoreRequest> ReferencePairs() {
  QuantWorld& w = World();
  std::vector<ScoreRequest> pairs;
  const std::vector<int>& items = w.cross.target().items();
  auto add_users = [&](const std::vector<int>& users, size_t count) {
    for (size_t i = 0; i < std::min(count, users.size()); ++i) {
      for (size_t j = 0; j < 3; ++j) {
        pairs.push_back({users[i], items[(i * 3 + j * 7) % items.size()]});
      }
    }
  };
  add_users(w.split.test_users, 4);
  add_users(w.split.validation_users, 2);
  add_users(w.split.train_users, 4);
  return pairs;
}

TEST(QuantSnapshotTest, DefaultLoadCarriesNoQuantHead) {
  EXPECT_EQ(World().float_snapshot->quant_head(), nullptr);
}

TEST(QuantSnapshotTest, QuantLoadBuildsPlannedHead) {
  QuantWorld& w = World();
  const QuantizedRatingHead* head = w.quant_snapshot->quant_head();
  ASSERT_NE(head, nullptr);
  const int f = w.config.feature_dim;
  EXPECT_EQ(head->user_width(), 2 * f);
  EXPECT_EQ(head->item_width(), f);
  EXPECT_EQ(head->num_classes(), w.config.num_rating_classes);

  // TinyModel (f=8) rating path: interaction [16->8], mlp [32->16->8->5].
  // With the default planner floors (min_k=16) the first three GEMMs run
  // int8 and the tiny final classifier stays float32 — the plan must say
  // exactly that, per node, with the ISA dispatch settled on.
  const nn::quant::QuantPlan& plan = head->plan();
  ASSERT_EQ(plan.nodes.size(), 4u);
  EXPECT_EQ(plan.nodes[0].name, "interaction_proj");
  EXPECT_TRUE(plan.nodes[0].int8);
  EXPECT_EQ(plan.nodes[0].k, 2 * f);
  EXPECT_EQ(plan.nodes[0].n, f);
  EXPECT_TRUE(plan.nodes[1].int8);   // 32 -> 16
  EXPECT_TRUE(plan.nodes[2].int8);   // 16 -> 8
  EXPECT_FALSE(plan.nodes[3].int8);  // 8 -> 5: K below min_k, stays float
  EXPECT_EQ(plan.Int8Nodes(), 3);
  EXPECT_FALSE(plan.ToString().empty());
}

// The accuracy gate, scaled to the unit world: quantized scores track the
// float32 scorer closely per prediction, and the two paths' RMSE against
// the gold ratings differ by less than the serving gate allows. bench_quant
// gates the full Table-2-shaped world the same way in CI.
TEST(QuantScorerTest, TracksFloatScorerWithinRmseGate) {
  QuantWorld& w = World();
  Scorer float_scorer(w.float_snapshot, /*cache_capacity=*/256);
  Scorer quant_scorer(w.quant_snapshot, /*cache_capacity=*/256);
  std::vector<ScoreRequest> pairs = ReferencePairs();
  ASSERT_FALSE(pairs.empty());
  std::vector<float> float_scores = float_scorer.ScoreBatch(pairs);
  std::vector<float> quant_scores = quant_scorer.ScoreBatch(pairs);
  ASSERT_EQ(float_scores.size(), quant_scores.size());

  double sq_diff = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(std::isfinite(quant_scores[i]));
    EXPECT_GE(quant_scores[i], 1.0f - 1e-4f);
    EXPECT_LE(quant_scores[i], 5.0f + 1e-4f);
    EXPECT_LE(std::fabs(quant_scores[i] - float_scores[i]), 0.25f)
        << "user " << pairs[i].user << " item " << pairs[i].item;
    sq_diff += static_cast<double>(quant_scores[i] - float_scores[i]) *
               (quant_scores[i] - float_scores[i]);
  }
  const double rmse_delta = std::sqrt(sq_diff / pairs.size());
  EXPECT_LT(rmse_delta, 0.05)
      << "quantized scores drifted from float32 beyond the gate";
}

TEST(QuantScorerTest, DeterministicAcrossCallsAndThreadCounts) {
  QuantWorld& w = World();
  std::vector<ScoreRequest> pairs = ReferencePairs();

  Scorer a(w.quant_snapshot, /*cache_capacity=*/256);
  std::vector<float> first = a.ScoreBatch(pairs);
  std::vector<float> second = a.ScoreBatch(pairs);
  EXPECT_EQ(first, second) << "same scorer, same batch: must be exact";

  // A fresh scorer (cold cache) and a different thread count must still
  // reproduce every bit: int32 accumulation is exact and row sharding
  // never splits an output element.
  const int before = GetNumThreads();
  SetNumThreads(1);
  Scorer b(w.quant_snapshot, /*cache_capacity=*/256);
  std::vector<float> serial = b.ScoreBatch(pairs);
  SetNumThreads(before);
  EXPECT_EQ(first, serial);
}

}  // namespace
}  // namespace serve
}  // namespace omnimatch
