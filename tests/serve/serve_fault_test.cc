// Fault-tolerant serving tests: bounded admission (overload rejection,
// deadlines, shutdown rejection), the graceful-degradation ladder, and
// zero-downtime snapshot hot-swap with validation + rollback — including
// concurrent swap-under-traffic interleavings (this suite runs in the TSan
// lane) and an OMNIMATCH_FAULTS-driven lane (see scripts/check.sh).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "serve/scorer.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"

namespace omnimatch {
namespace serve {
namespace {

/// Disarms the global fault registry on entry AND exit so a fault armed by
/// one test can never leak into the next.
struct FaultGuard {
  FaultGuard() { FaultInjector::Global().Disarm(); }
  ~FaultGuard() { FaultInjector::Global().Disarm(); }
};

core::OmniMatchConfig TinyModel() {
  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  config.select_best_epoch = false;
  config.seed = 31;
  return config;
}

/// One trained world with TWO checkpoints: A after 2 epochs and B after a
/// third epoch resumed from A. Same config fingerprint (the fingerprint
/// excludes `epochs`), different snapshot versions — a realistic hot-swap
/// candidate pair. trainer_b stays alive as the reference for snapshot B.
struct FaultWorld {
  data::CrossDomainDataset cross;
  data::ColdStartSplit split;
  core::OmniMatchConfig config;
  std::unique_ptr<core::OmniMatchTrainer> trainer_a;
  std::unique_ptr<core::OmniMatchTrainer> trainer_b;
  std::string checkpoint_a;
  std::string checkpoint_b;
  std::shared_ptr<const ModelSnapshot> snapshot_a;
  std::shared_ptr<const ModelSnapshot> snapshot_b;
};

FaultWorld* BuildWorld() {
  auto* w = new FaultWorld();
  data::SyntheticConfig world_config;
  world_config.num_users = 50;
  world_config.items_per_domain = 25;
  world_config.mean_reviews_per_user = 5;
  world_config.seed = 47;
  data::SyntheticWorld world(world_config);
  w->cross = world.MakePair("Books", "Movies");
  Rng split_rng(11);
  w->split = data::MakeColdStartSplit(w->cross, &split_rng);
  w->config = TinyModel();

  w->trainer_a = std::make_unique<core::OmniMatchTrainer>(w->config, &w->cross,
                                                          w->split);
  EXPECT_TRUE(w->trainer_a->Prepare().ok());
  w->trainer_a->Train();
  w->checkpoint_a = testing::TempDir() + "/serve_fault_a.omck";
  EXPECT_TRUE(w->trainer_a->SaveCheckpoint(w->checkpoint_a).ok());

  core::OmniMatchConfig config_b = w->config;
  config_b.epochs = w->config.epochs + 1;
  w->trainer_b = std::make_unique<core::OmniMatchTrainer>(config_b, &w->cross,
                                                          w->split);
  EXPECT_TRUE(w->trainer_b->Prepare().ok());
  EXPECT_TRUE(w->trainer_b->LoadCheckpoint(w->checkpoint_a).ok());
  w->trainer_b->Train();  // one more epoch
  w->checkpoint_b = testing::TempDir() + "/serve_fault_b.omck";
  EXPECT_TRUE(w->trainer_b->SaveCheckpoint(w->checkpoint_b).ok());

  auto load = [&](const std::string& path) {
    Result<std::shared_ptr<const ModelSnapshot>> loaded =
        ModelSnapshot::Load(w->config, &w->cross, w->split, path);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return loaded.value();
  };
  w->snapshot_a = load(w->checkpoint_a);
  w->snapshot_b = load(w->checkpoint_b);
  EXPECT_NE(w->snapshot_a->version(), w->snapshot_b->version());
  return w;
}

FaultWorld& World() {
  static FaultWorld* world = BuildWorld();
  return *world;
}

std::vector<ScoreRequest> SomePairs(size_t users, size_t items_per_user) {
  FaultWorld& w = World();
  std::vector<ScoreRequest> pairs;
  const std::vector<int>& items = w.cross.target().items();
  const std::vector<int>& test_users = w.split.test_users;
  for (size_t i = 0; i < std::min(users, test_users.size()); ++i) {
    for (size_t j = 0; j < items_per_user; ++j) {
      pairs.push_back({test_users[i],
                       items[(i * items_per_user + j) % items.size()]});
    }
  }
  return pairs;
}

TEST(AdmissionTest, ShutdownRejectsLateRequestsExplicitly) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer server(w.snapshot_a, InferenceServer::Options());
  const ScoreRequest pair = SomePairs(1, 1)[0];
  EXPECT_EQ(RequestStatus::kOk,
            server.ScoreAsync(pair.user, pair.item).get().status);
  server.Shutdown();
  // A request submitted after shutdown began is answered, not dropped (and
  // certainly not a crash): the caller learns exactly why.
  ScoreResult late = server.ScoreAsync(pair.user, pair.item).get();
  EXPECT_EQ(RequestStatus::kShuttingDown, late.status);
  EXPECT_FALSE(late.has_score());
  EXPECT_EQ(1, server.stats().rejected_shutdown);
  EXPECT_EQ(1, server.stats().requests_served);
}

TEST(AdmissionTest, FullQueueRejectsOverloaded) {
  FaultGuard guard;
  FaultWorld& w = World();
  // The first dispatched batch stalls in an injected serve_slow sleep (the
  // sleep runs AFTER the pop, outside the queue lock); while the executor
  // is stuck there the queue (capacity 4) is filled and overfilled. The
  // fired() spin makes the stall certain before the flood starts, so the
  // rejection count doesn't depend on scheduling at all.
  ASSERT_TRUE(
      FaultInjector::Global().ArmFromString("serve_slow@0:mag=2000").ok());
  InferenceServer::Options options;
  options.executors = 1;
  options.max_batch = 1;
  options.linger_us = 0;
  options.max_queue = 4;
  options.degrade_fallback_fill = 1.1;  // keep the tier ladder out of this
  options.degrade_cached_fill = 1.1;
  InferenceServer server(w.snapshot_a, options);

  const std::vector<ScoreRequest> pairs = SomePairs(3, 3);
  ASSERT_GE(pairs.size(), 9u);
  std::vector<std::future<ScoreResult>> futures;
  futures.push_back(server.ScoreAsync(pairs[0].user, pairs[0].item));
  while (FaultInjector::Global().fired() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (size_t i = 1; i < 9; ++i) {
    futures.push_back(server.ScoreAsync(pairs[i].user, pairs[i].item));
  }
  int ok = 0, overloaded = 0;
  for (auto& f : futures) {
    const ScoreResult r = f.get();
    if (r.status == RequestStatus::kOverloaded) {
      ++overloaded;
      EXPECT_FALSE(r.has_score());
    } else {
      ++ok;
      EXPECT_TRUE(r.has_score());
    }
  }
  EXPECT_EQ(5, ok);  // the stalled request plus the 4 that fit in the queue
  EXPECT_EQ(4, overloaded);
  EXPECT_EQ(4, server.stats().rejected_overloaded);
  EXPECT_EQ(5, server.stats().served_full);
}

TEST(AdmissionTest, ExpiredRequestsAnsweredDeadlineExceeded) {
  FaultGuard guard;
  FaultWorld& w = World();
  // First batch is slowed 100ms by an injected fault; the requests queued
  // behind it carry 5ms deadlines, so they are expired — unscored — when
  // the executor gets back to the queue.
  ASSERT_TRUE(
      FaultInjector::Global().ArmFromString("serve_slow@0:mag=100").ok());
  InferenceServer::Options options;
  options.executors = 1;
  options.max_batch = 1;
  options.linger_us = 0;
  options.deadline_ms = 5;
  InferenceServer server(w.snapshot_a, options);

  const std::vector<ScoreRequest> pairs = SomePairs(3, 1);
  std::vector<std::future<ScoreResult>> futures;
  for (const ScoreRequest& p : pairs) {
    futures.push_back(server.ScoreAsync(p.user, p.item));
  }
  int scored = 0, expired = 0;
  for (auto& f : futures) {
    const ScoreResult r = f.get();
    if (r.status == RequestStatus::kDeadlineExceeded) {
      ++expired;
      EXPECT_FALSE(r.has_score());
    } else {
      EXPECT_EQ(RequestStatus::kOk, r.status);
      ++scored;
    }
  }
  EXPECT_EQ(1, scored);  // the slowed batch itself completes
  EXPECT_EQ(2, expired);
  EXPECT_EQ(2, server.stats().deadline_exceeded);
}

TEST(DegradationTest, QueuePressureDegradesToGlobalMean) {
  FaultGuard guard;
  FaultWorld& w = World();
  const std::vector<ScoreRequest> pairs = SomePairs(4, 2);
  ASSERT_GE(pairs.size(), 4u);
  InferenceServer::Options options;
  options.executors = 1;
  // Dispatch triggers on the COUNT condition, never the clock: the batch
  // size equals the submission count, and the linger is far beyond any
  // plausible scheduling delay, so the executor provably sees the queue at
  // 100% fill when it picks the tier.
  options.max_batch = static_cast<int>(pairs.size());
  options.linger_us = 10000000;
  options.max_queue = pairs.size();
  options.degrade_cached_fill = 0.2;
  options.degrade_fallback_fill = 0.5;
  InferenceServer server(w.snapshot_a, options);

  std::vector<std::future<ScoreResult>> futures;
  for (const ScoreRequest& p : pairs) {
    futures.push_back(server.ScoreAsync(p.user, p.item));
  }
  for (auto& f : futures) {
    const ScoreResult r = f.get();
    // The queue was at 100% fill at dispatch: the whole batch sheds to the
    // mean tier.
    EXPECT_EQ(RequestStatus::kDegradedFallback, r.status);
    EXPECT_EQ(w.snapshot_a->global_mean_rating(), r.score);
  }
  EXPECT_EQ(static_cast<int64_t>(pairs.size()),
            server.stats().served_degraded_fallback);
  EXPECT_EQ(0, server.stats().served_full);
}

TEST(DegradationTest, ForcedCachedTierServesHitsExactAndMissesMean) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer::Options options;
  options.executors = 1;
  options.linger_us = 0;
  InferenceServer server(w.snapshot_a, options);

  const std::vector<ScoreRequest> pairs = SomePairs(2, 1);
  const ScoreRequest warm = pairs[0];  // admitted at full fidelity first
  const ScoreRequest cold = pairs[1];
  const float full_score = server.Score(warm.user, warm.item);

  // Every batch for a while is forced onto the cached-only tier, as if the
  // queue were backing up.
  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromString("executor_score@0:mag=1,count=1000")
                  .ok());
  ScoreResult hit = server.ScoreAsync(warm.user, warm.item).get();
  EXPECT_EQ(RequestStatus::kDegradedCached, hit.status);
  EXPECT_EQ(full_score, hit.score);  // cache hit: bit-identical, just flagged

  ScoreResult miss = server.ScoreAsync(cold.user, cold.item).get();
  EXPECT_EQ(RequestStatus::kDegradedFallback, miss.status);
  EXPECT_EQ(w.snapshot_a->global_mean_rating(), miss.score);

  // The degraded miss did NOT poison the cache with a fallback entry: at
  // full fidelity the user admits normally and scores exactly.
  FaultInjector::Global().Disarm();
  Scorer reference(w.snapshot_a, 64);
  EXPECT_EQ(reference.Score(cold.user, cold.item),
            server.Score(cold.user, cold.item));
}

TEST(DegradationTest, ForcedFallbackTierBypassesModel) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer::Options options;
  options.executors = 1;
  options.linger_us = 0;
  InferenceServer server(w.snapshot_a, options);
  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromString("executor_score@0:mag=2,count=1000")
                  .ok());
  const ScoreRequest pair = SomePairs(1, 1)[0];
  const ScoreResult r = server.ScoreAsync(pair.user, pair.item).get();
  EXPECT_EQ(RequestStatus::kDegradedFallback, r.status);
  EXPECT_EQ(w.snapshot_a->global_mean_rating(), r.score);
  EXPECT_EQ(0u, server.scorer().cache().size());  // the model never ran
}

TEST(SnapshotSwapTest, SwapServesNewVersionAndEvictsStaleEntries) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer::Options options;
  options.executors = 2;
  options.linger_us = 0;
  InferenceServer server(w.snapshot_a, options);
  SnapshotManager manager(&server);

  const std::vector<ScoreRequest> pairs = SomePairs(4, 2);
  for (const ScoreRequest& p : pairs) {
    EXPECT_EQ(w.trainer_a->PredictRating(p.user, p.item),
              server.Score(p.user, p.item));
  }
  EXPECT_GT(server.scorer().cache().size(), 0u);
  EXPECT_EQ(w.snapshot_a->version(), manager.active_version());

  const Status swapped = manager.SwapFromCheckpoint(
      w.config, &w.cross, w.split, w.checkpoint_b);
  ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  EXPECT_EQ(1, manager.swaps());
  EXPECT_EQ(0, manager.rollbacks());
  EXPECT_EQ(w.snapshot_b->version(), manager.active_version());
  EXPECT_EQ(1, server.stats().snapshot_swaps);
  // Version-A entries were evicted eagerly, not left to age out.
  EXPECT_GT(server.scorer().cache().stale_evictions(), 0);

  for (const ScoreRequest& p : pairs) {
    const ScoreResult r = server.ScoreAsync(p.user, p.item).get();
    EXPECT_EQ(RequestStatus::kOk, r.status);
    EXPECT_EQ(w.snapshot_b->version(), r.snapshot_version);
    EXPECT_EQ(w.trainer_b->PredictRating(p.user, p.item), r.score);
  }
}

TEST(SnapshotSwapTest, CorruptCandidateRollsBack) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer server(w.snapshot_a, InferenceServer::Options());
  SnapshotManager manager(&server);

  // Corrupt a copy of checkpoint B mid-file (past the header, inside the
  // tensor payload) so the reader's integrity checking must catch it.
  std::ifstream in(w.checkpoint_b, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 256u);
  for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i) {
    bytes[i] = static_cast<char>(~bytes[i]);
  }
  const std::string corrupt_path =
      testing::TempDir() + "/serve_fault_corrupt.omck";
  std::ofstream(corrupt_path, std::ios::binary).write(bytes.data(),
                                                      bytes.size());

  const ScoreRequest pair = SomePairs(1, 1)[0];
  const float before = server.Score(pair.user, pair.item);
  const Status swapped =
      manager.SwapFromCheckpoint(w.config, &w.cross, w.split, corrupt_path);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(0, manager.swaps());
  EXPECT_EQ(1, manager.rollbacks());
  // The incumbent never stopped serving — same version, same bits.
  EXPECT_EQ(w.snapshot_a->version(), manager.active_version());
  EXPECT_EQ(before, server.Score(pair.user, pair.item));
  std::remove(corrupt_path.c_str());
}

TEST(SnapshotSwapTest, InjectedLoadFaultRollsBackThenRetrySucceeds) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer server(w.snapshot_a, InferenceServer::Options());
  SnapshotManager manager(&server);
  ASSERT_TRUE(FaultInjector::Global().ArmFromString("snapshot_load@0").ok());

  Status swapped = manager.SwapFromCheckpoint(w.config, &w.cross, w.split,
                                              w.checkpoint_b);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(1, manager.rollbacks());
  EXPECT_EQ(w.snapshot_a->version(), manager.active_version());

  // The fault fired once; the retry — the operator's next rollout attempt —
  // validates and installs cleanly.
  swapped = manager.SwapFromCheckpoint(w.config, &w.cross, w.split,
                                       w.checkpoint_b);
  EXPECT_TRUE(swapped.ok()) << swapped.ToString();
  EXPECT_EQ(1, manager.swaps());
  EXPECT_EQ(w.snapshot_b->version(), manager.active_version());
}

TEST(SnapshotSwapTest, ProbeValidationRejectsNonFiniteParameters) {
  FaultGuard guard;
  FaultWorld& w = World();
  InferenceServer server(w.snapshot_a, InferenceServer::Options());
  SnapshotManager manager(&server);

  // Load a private candidate and poison one model parameter. The golden
  // probes must catch it even though the file itself was pristine.
  Result<std::shared_ptr<const ModelSnapshot>> loaded = ModelSnapshot::Load(
      w.config, &w.cross, w.split, w.checkpoint_b);
  ASSERT_TRUE(loaded.ok());
  std::shared_ptr<const ModelSnapshot> candidate = std::move(loaded).value();
  std::vector<nn::Tensor> params = candidate->model()->Parameters();
  ASSERT_FALSE(params.empty());
  for (nn::Tensor& p : params) {
    p.data()[0] = std::numeric_limits<float>::quiet_NaN();
  }

  const Status swapped = manager.SwapTo(candidate);
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, swapped.code());
  EXPECT_EQ(1, manager.rollbacks());
  EXPECT_EQ(w.snapshot_a->version(), manager.active_version());
}

// The satellite TSan scenario: many submitters, several executors, and a
// hot swap landing mid-burst. Every response must carry a score matching
// the EXACT snapshot version it reports — no torn batches, no stale reps.
TEST(SnapshotSwapTest, ConcurrentTrafficAcrossSwapIsVersionConsistent) {
  FaultGuard guard;
  FaultWorld& w = World();
  const std::vector<ScoreRequest> pairs = SomePairs(6, 3);

  std::vector<float> ref_a, ref_b;
  {
    Scorer sa(w.snapshot_a, 256), sb(w.snapshot_b, 256);
    for (const ScoreRequest& p : pairs) {
      ref_a.push_back(sa.Score(p.user, p.item));
      ref_b.push_back(sb.Score(p.user, p.item));
    }
  }

  InferenceServer::Options options;
  options.executors = 4;
  options.max_batch = 8;
  options.linger_us = 200;
  options.cache_capacity = 8;  // churn: evictions while swapping
  options.max_queue = 0;       // unbounded: every request scores at full tier
  InferenceServer server(w.snapshot_a, options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  struct Got {
    size_t pair = 0;
    std::future<ScoreResult> future;
  };
  std::vector<std::vector<Got>> submitted(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < pairs.size(); ++i) {
          const size_t idx = (i * (t + 1) + round) % pairs.size();
          Got g;
          g.pair = idx;
          g.future = server.ScoreAsync(pairs[idx].user, pairs[idx].item);
          submitted[t].push_back(std::move(g));
          if (round == kRounds / 2 && i == pairs.size() / 2) {
            // Let the burst drain a little so the swap lands mid-traffic.
            std::this_thread::yield();
          }
        }
      }
    });
  }
  // Swap while all four submitters are mid-burst.
  server.SwapSnapshot(w.snapshot_b);
  for (std::thread& th : submitters) th.join();
  server.Shutdown();

  int served_a = 0, served_b = 0;
  for (auto& per_thread : submitted) {
    for (Got& g : per_thread) {
      const ScoreResult r = g.future.get();
      ASSERT_EQ(RequestStatus::kOk, r.status);
      if (r.snapshot_version == w.snapshot_a->version()) {
        ++served_a;
        ASSERT_EQ(ref_a[g.pair], r.score) << "pair " << g.pair;
      } else {
        ASSERT_EQ(w.snapshot_b->version(), r.snapshot_version);
        ++served_b;
        ASSERT_EQ(ref_b[g.pair], r.score) << "pair " << g.pair;
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(served_a + served_b),
            server.stats().requests_served);
  // The swap was issued racing the first submissions; at least some of the
  // traffic must land on the new snapshot.
  EXPECT_GT(served_b, 0);
}

// Driven by scripts/check.sh with OMNIMATCH_FAULTS arming every serve probe
// point; a plain `ctest` run (env unset) skips it. Asserts the contract the
// bench also enforces: under injected admission faults, forced degraded
// tiers, slow batches, and a failing swap, every submitted request is
// answered with an explicit status and the server keeps serving.
TEST(ServeFaultEnvTest, SurvivesEnvArmedFaultsUnderTraffic) {
  const char* env = std::getenv("OMNIMATCH_FAULTS");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "OMNIMATCH_FAULTS not set; run via scripts/check.sh";
  }
  FaultWorld& w = World();
  ASSERT_TRUE(FaultInjector::Global().armed());

  InferenceServer::Options options;
  options.executors = 4;
  options.max_batch = 8;
  options.linger_us = 100;
  options.max_queue = 64;
  options.deadline_ms = 200;
  InferenceServer server(w.snapshot_a, options);
  SnapshotManager manager(&server);

  const std::vector<ScoreRequest> pairs = SomePairs(6, 3);
  std::vector<std::future<ScoreResult>> futures;
  for (int round = 0; round < 10; ++round) {
    for (const ScoreRequest& p : pairs) {
      futures.push_back(server.ScoreAsync(p.user, p.item));
    }
    if (round == 4) {
      // With snapshot_load armed this rolls back; either way the server
      // must keep answering.
      const Status swapped = manager.SwapFromCheckpoint(
          w.config, &w.cross, w.split, w.checkpoint_b);
      (void)swapped;
    }
  }

  int with_score = 0, rejected = 0;
  for (auto& f : futures) {
    const ScoreResult r = f.get();  // resolves: nothing is ever dropped
    if (r.has_score()) {
      ++with_score;
      EXPECT_GE(r.score, 1.0f);
      EXPECT_LE(r.score, 5.0f);
    } else {
      ++rejected;
      EXPECT_TRUE(r.status == RequestStatus::kDeadlineExceeded ||
                  r.status == RequestStatus::kOverloaded)
          << RequestStatusName(r.status);
    }
  }
  EXPECT_EQ(futures.size(), static_cast<size_t>(with_score + rejected));
  EXPECT_GT(with_score, 0);
  EXPECT_GT(FaultInjector::Global().fired(), 0);
  FaultInjector::Global().Disarm();
}

}  // namespace
}  // namespace serve
}  // namespace omnimatch
