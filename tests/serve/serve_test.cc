// Serving runtime tests: snapshot load + bit-identity against the trainer's
// evaluation path, LRU cache behavior, deterministic online cold-start
// admission, and micro-batch coalescing under concurrent submitters (this
// suite runs in the TSan lane — see scripts/check.sh).

#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "serve/cache.h"
#include "serve/scorer.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace omnimatch {
namespace serve {
namespace {

core::OmniMatchConfig TinyModel() {
  core::OmniMatchConfig config;
  config.embed_dim = 8;
  config.cnn_channels = 4;
  config.kernel_sizes = {2, 3};
  config.feature_dim = 8;
  config.projection_dim = 4;
  config.doc_len = 16;
  config.item_doc_len = 16;
  config.batch_size = 16;
  config.epochs = 2;
  // The snapshot must hold exactly the parameters the live trainer scores
  // with, so skip best-epoch selection (which would freeze an earlier
  // epoch's weights into the checkpoint).
  config.select_best_epoch = false;
  config.seed = 31;
  return config;
}

/// One trained world shared by every test: training even the tiny model is
/// the dominant cost, so do it once. The trainer stays alive to provide the
/// PredictRating reference values.
struct ServeWorld {
  data::CrossDomainDataset cross;
  data::ColdStartSplit split;
  core::OmniMatchConfig config;
  std::unique_ptr<core::OmniMatchTrainer> trainer;
  std::string checkpoint_path;
  std::shared_ptr<const ModelSnapshot> snapshot;
  /// A source-only user: has source-domain records but no entry in the
  /// snapshot's frozen target documents (the online-admission case).
  int source_only_user = -1;
};

ServeWorld* BuildWorld() {
  auto* w = new ServeWorld();
  data::SyntheticConfig world_config;
  world_config.num_users = 60;
  world_config.items_per_domain = 30;
  world_config.mean_reviews_per_user = 5;
  world_config.participation = 0.8;  // leaves some source-only users
  world_config.seed = 21;
  data::SyntheticWorld world(world_config);
  w->cross = world.MakePair("Books", "Movies");
  Rng split_rng(7);
  w->split = data::MakeColdStartSplit(w->cross, &split_rng);
  w->config = TinyModel();

  w->trainer = std::make_unique<core::OmniMatchTrainer>(w->config, &w->cross,
                                                        w->split);
  EXPECT_TRUE(w->trainer->Prepare().ok());
  w->trainer->Train();
  w->checkpoint_path = testing::TempDir() + "/serve_test.omck";
  EXPECT_TRUE(w->trainer->SaveCheckpoint(w->checkpoint_path).ok());

  Result<std::shared_ptr<const ModelSnapshot>> loaded = ModelSnapshot::Load(
      w->config, &w->cross, w->split, w->checkpoint_path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  w->snapshot = loaded.value();

  std::unordered_set<int> target_users(w->cross.target().users().begin(),
                                       w->cross.target().users().end());
  for (int u : w->cross.source().users()) {
    if (target_users.count(u) == 0) {
      w->source_only_user = u;
      break;
    }
  }
  EXPECT_GE(w->source_only_user, 0)
      << "synthetic world has no source-only user; lower participation";
  return w;
}

ServeWorld& World() {
  static ServeWorld* world = BuildWorld();
  return *world;
}

/// A spread of (user, item) pairs: cold test users, train users, several
/// items per user (the second item per user exercises the cache-hit path).
std::vector<ScoreRequest> ReferencePairs() {
  ServeWorld& w = World();
  std::vector<ScoreRequest> pairs;
  const std::vector<int>& items = w.cross.target().items();
  auto add_users = [&](const std::vector<int>& users, size_t count) {
    for (size_t i = 0; i < std::min(count, users.size()); ++i) {
      for (size_t j = 0; j < 3; ++j) {
        pairs.push_back(
            {users[i], items[(i * 3 + j * 7) % items.size()]});
      }
    }
  };
  add_users(w.split.test_users, 4);
  add_users(w.split.validation_users, 2);
  add_users(w.split.train_users, 4);
  return pairs;
}

TEST(ModelSnapshotTest, LoadRejectsFingerprintMismatch) {
  ServeWorld& w = World();
  core::OmniMatchConfig other = w.config;
  other.seed = w.config.seed + 1;
  Result<std::shared_ptr<const ModelSnapshot>> loaded =
      ModelSnapshot::Load(other, &w.cross, w.split, w.checkpoint_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelSnapshotTest, LoadRejectsMissingFile) {
  ServeWorld& w = World();
  Result<std::shared_ptr<const ModelSnapshot>> loaded = ModelSnapshot::Load(
      w.config, &w.cross, w.split, testing::TempDir() + "/nonexistent.omck");
  ASSERT_FALSE(loaded.ok());
}

TEST(ScorerTest, BitIdenticalToTrainerEvalPath) {
  ServeWorld& w = World();
  Scorer scorer(w.snapshot, /*cache_capacity=*/256);
  for (const ScoreRequest& p : ReferencePairs()) {
    const float expected = w.trainer->PredictRating(p.user, p.item);
    const float got = scorer.Score(p.user, p.item);
    // Exact equality: the serving path must reproduce the trainer's eval
    // math bit-for-bit, cached representations and re-batching included.
    ASSERT_EQ(expected, got) << "user " << p.user << " item " << p.item;
  }
}

TEST(ScorerTest, BatchedScoringMatchesUnbatched) {
  ServeWorld& w = World();
  std::vector<ScoreRequest> pairs = ReferencePairs();

  Scorer unbatched(w.snapshot, 256);
  std::vector<float> one_by_one;
  for (const ScoreRequest& p : pairs) {
    one_by_one.push_back(unbatched.Score(p.user, p.item));
  }
  Scorer batched(w.snapshot, 256);
  std::vector<float> all_at_once = batched.ScoreBatch(pairs);
  ASSERT_EQ(one_by_one.size(), all_at_once.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(one_by_one[i], all_at_once[i]) << "pair " << i;
  }
}

TEST(ScorerTest, UnknownUserWithoutRecordsGetsGlobalMean) {
  ServeWorld& w = World();
  Scorer scorer(w.snapshot, 16);
  const int no_such_user = 1000000;
  const int item = w.cross.target().items().front();
  EXPECT_EQ(w.snapshot->global_mean_rating(), scorer.Score(no_such_user, item));
  // The trainer's PredictRating falls back identically.
  EXPECT_EQ(w.trainer->PredictRating(no_such_user, item),
            scorer.Score(no_such_user, item));
}

TEST(ScorerTest, ColdAdmissionIsDeterministic) {
  ServeWorld& w = World();
  const int user = w.source_only_user;
  const int item_a = w.cross.target().items()[0];
  const int item_b = w.cross.target().items()[1];

  Scorer first(w.snapshot, 16);
  const float score_a = first.Score(user, item_a);
  const float score_b = first.Score(user, item_b);
  EXPECT_GE(score_a, 1.0f);
  EXPECT_LE(score_a, 5.0f);

  // A fresh scorer (empty cache) admits the same user again: the admission
  // RNG is seeded from (snapshot version, user id), so the regenerated
  // documents — and every score — are identical.
  Scorer second(w.snapshot, 16);
  EXPECT_EQ(score_b, second.Score(user, item_b));
  EXPECT_EQ(score_a, second.Score(user, item_a));

  // The docs themselves are reproducible too.
  EXPECT_EQ(w.snapshot->BuildColdUserDocs(user),
            w.snapshot->BuildColdUserDocs(user));
}

TEST(UserEmbeddingCacheTest, LruEvictionAndHitAccounting) {
  auto entry = [] {
    auto e = std::make_shared<UserEntry>();
    e->rep_rows = {{1.0f}};
    return e;
  };
  UserEmbeddingCache cache(2);
  const uint64_t v = 99;
  EXPECT_EQ(nullptr, cache.Get(v, 1));  // miss
  cache.Put(v, 1, entry());
  cache.Put(v, 2, entry());
  EXPECT_EQ(2u, cache.size());
  EXPECT_NE(nullptr, cache.Get(v, 1));  // hit; 1 becomes most-recent
  cache.Put(v, 3, entry());             // evicts 2 (LRU)
  EXPECT_EQ(2u, cache.size());
  EXPECT_EQ(nullptr, cache.Get(v, 2));  // miss: evicted
  EXPECT_NE(nullptr, cache.Get(v, 1));
  EXPECT_NE(nullptr, cache.Get(v, 3));
  // A different snapshot version never hits the old entries.
  EXPECT_EQ(nullptr, cache.Get(v + 1, 1));

  EXPECT_EQ(3, cache.hits());
  EXPECT_EQ(3, cache.misses());
  EXPECT_EQ(1, cache.evictions());
}

TEST(ScorerTest, CacheHitsAccountedAcrossRequests) {
  ServeWorld& w = World();
  Scorer scorer(w.snapshot, 256);
  const int user = w.split.test_users[0];
  const std::vector<int>& items = w.cross.target().items();
  scorer.Score(user, items[0]);  // admission: one miss
  scorer.Score(user, items[1]);  // cached representation: one hit
  scorer.Score(user, items[2]);
  EXPECT_EQ(1, scorer.cache().misses());
  EXPECT_EQ(2, scorer.cache().hits());
  EXPECT_EQ(1u, scorer.cache().size());
}

TEST(ScorerTest, EvictionForcesBitIdenticalRecompute) {
  ServeWorld& w = World();
  const int item = w.cross.target().items()[0];
  Scorer scorer(w.snapshot, /*cache_capacity=*/1);
  const int user_a = w.split.test_users[0];
  const int user_b = w.split.test_users[1];
  const float first = scorer.Score(user_a, item);
  scorer.Score(user_b, item);  // capacity 1: evicts user_a
  EXPECT_EQ(1, scorer.cache().evictions());
  // Recomputed-after-eviction representation scores identically.
  EXPECT_EQ(first, scorer.Score(user_a, item));
}

TEST(InferenceServerTest, CoalescesBurstIntoFewBatches) {
  ServeWorld& w = World();
  InferenceServer::Options options;
  options.max_batch = 32;
  options.linger_us = 100000;  // 100ms: far above the enqueue loop's cost
  InferenceServer server(w.snapshot, options);

  std::vector<ScoreRequest> pairs = ReferencePairs();
  std::vector<std::future<ScoreResult>> futures;
  for (const ScoreRequest& p : pairs) {
    futures.push_back(server.ScoreAsync(p.user, p.item));
  }
  std::vector<float> got;
  for (auto& f : futures) {
    const ScoreResult r = f.get();
    EXPECT_EQ(RequestStatus::kOk, r.status);
    EXPECT_EQ(w.snapshot->version(), r.snapshot_version);
    got.push_back(r.score);
  }
  server.Shutdown();

  EXPECT_EQ(static_cast<int64_t>(pairs.size()), server.requests_served());
  // The whole burst was enqueued within one linger window, so it must have
  // coalesced into at most a couple of dispatches (exactly one when the
  // executor saw the full queue; two if it woke mid-enqueue).
  EXPECT_LE(server.batches_dispatched(), 2);

  Scorer reference(w.snapshot, 256);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(reference.Score(pairs[i].user, pairs[i].item), got[i])
        << "pair " << i;
  }
}

TEST(InferenceServerTest, ConcurrentSubmittersGetBitIdenticalScores) {
  ServeWorld& w = World();
  std::vector<ScoreRequest> pairs = ReferencePairs();

  // Reference values, computed single-threaded BEFORE the server exists —
  // the baseline the concurrent results must reproduce bit-for-bit.
  std::vector<float> expected;
  {
    Scorer reference(w.snapshot, 256);
    for (const ScoreRequest& p : pairs) {
      expected.push_back(reference.Score(p.user, p.item));
    }
  }

  InferenceServer::Options options;
  options.max_batch = 8;
  options.linger_us = 500;
  options.cache_capacity = 8;  // small: forces evictions under load
  InferenceServer server(w.snapshot, options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<std::vector<float>> results(
      kThreads, std::vector<float>(pairs.size() * kRounds, 0.0f));
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the pairs at a different stride so concurrent
        // batches mix users and items.
        for (size_t i = 0; i < pairs.size(); ++i) {
          const size_t idx = (i * (t + 1) + round) % pairs.size();
          results[t][round * pairs.size() + i] =
              server.Score(pairs[idx].user, pairs[idx].item);
        }
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  server.Shutdown();

  EXPECT_EQ(static_cast<int64_t>(kThreads * kRounds * pairs.size()),
            server.requests_served());
  for (int t = 0; t < kThreads; ++t) {
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < pairs.size(); ++i) {
        const size_t idx = (i * (t + 1) + round) % pairs.size();
        ASSERT_EQ(expected[idx], results[t][round * pairs.size() + i])
            << "thread " << t << " round " << round << " pair " << idx;
      }
    }
  }
}

TEST(InferenceServerTest, ShutdownDrainsQueuedRequests) {
  ServeWorld& w = World();
  InferenceServer::Options options;
  options.max_batch = 4;
  options.linger_us = 1000000;  // 1s: requests would linger without drain
  auto server = std::make_unique<InferenceServer>(w.snapshot, options);
  std::vector<std::future<ScoreResult>> futures;
  const std::vector<ScoreRequest> pairs = ReferencePairs();
  for (size_t i = 0; i < 6 && i < pairs.size(); ++i) {
    futures.push_back(server->ScoreAsync(pairs[i].user, pairs[i].item));
  }
  server->Shutdown();  // must score everything still queued
  for (auto& f : futures) {
    const ScoreResult r = f.get();
    EXPECT_EQ(RequestStatus::kOk, r.status);
    EXPECT_GE(r.score, 1.0f);
    EXPECT_LE(r.score, 5.0f);
  }
}

TEST(ScorerTest, HybridInferenceMatchesTrainer) {
  // Separate, smaller world: the shared one trains without hybrid readouts,
  // and the hybrid rating head must be trained on hybrid inputs.
  data::SyntheticConfig world_config;
  world_config.num_users = 40;
  world_config.items_per_domain = 20;
  world_config.mean_reviews_per_user = 4;
  world_config.seed = 33;
  data::SyntheticWorld world(world_config);
  data::CrossDomainDataset cross = world.MakePair("Books", "Movies");
  Rng split_rng(9);
  data::ColdStartSplit split = data::MakeColdStartSplit(cross, &split_rng);

  core::OmniMatchConfig config = TinyModel();
  config.epochs = 1;
  config.use_hybrid_inference = true;
  core::OmniMatchTrainer trainer(config, &cross, split);
  ASSERT_TRUE(trainer.Prepare().ok());
  trainer.Train();
  const std::string path = testing::TempDir() + "/serve_hybrid.omck";
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  Result<std::shared_ptr<const ModelSnapshot>> loaded =
      ModelSnapshot::Load(config, &cross, split, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Scorer scorer(loaded.value(), 64);
  const std::vector<int>& items = cross.target().items();
  for (size_t i = 0; i < std::min<size_t>(3, split.test_users.size()); ++i) {
    const int user = split.test_users[i];
    const int item = items[i % items.size()];
    EXPECT_EQ(trainer.PredictRating(user, item), scorer.Score(user, item))
        << "user " << user << " item " << item;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace omnimatch
