#include "text/document.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace text {
namespace {

Vocabulary MakeVocab() {
  Vocabulary v;
  for (const char* tok : {"great", "movie", "awful", "book"}) v.AddToken(tok);
  return v;
}

TEST(DocumentTest, ConcatAndTokenizeJoinsReviews) {
  auto toks = ConcatAndTokenize({"Great movie!", "awful BOOK"});
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "great");
  EXPECT_EQ(toks[3], "book");
}

TEST(DocumentTest, PadsShortDocuments) {
  Vocabulary v = MakeVocab();
  auto ids = BuildDocumentIds({"great movie"}, v, 5);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_NE(ids[0], Vocabulary::kPadId);
  EXPECT_NE(ids[1], Vocabulary::kPadId);
  EXPECT_EQ(ids[2], Vocabulary::kPadId);
  EXPECT_EQ(ids[4], Vocabulary::kPadId);
}

TEST(DocumentTest, TruncatesLongDocuments) {
  Vocabulary v = MakeVocab();
  auto ids = BuildDocumentIds({"great movie awful book great movie"}, v, 3);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], v.IdOf("great"));
  EXPECT_EQ(ids[2], v.IdOf("awful"));
}

TEST(DocumentTest, UnknownTokensBecomeUnk) {
  Vocabulary v = MakeVocab();
  auto ids = BuildDocumentIds({"mysterious artifact"}, v, 4);
  EXPECT_EQ(ids[0], Vocabulary::kUnkId);
  EXPECT_EQ(ids[1], Vocabulary::kUnkId);
}

TEST(DocumentTest, EmptyReviewsAllPad) {
  Vocabulary v = MakeVocab();
  auto ids = BuildDocumentIds({}, v, 4);
  for (int id : ids) EXPECT_EQ(id, Vocabulary::kPadId);
}

TEST(DocumentTest, ExactLengthNoPadding) {
  Vocabulary v = MakeVocab();
  auto ids = BuildDocumentIds({"great movie"}, v, 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[1], v.IdOf("movie"));
}

}  // namespace
}  // namespace text
}  // namespace omnimatch
