#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace omnimatch {
namespace text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto toks = Tokenize("Vampire Romance");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "vampire");
  EXPECT_EQ(toks[1], "romance");
}

TEST(TokenizerTest, StripsPunctuation) {
  auto toks = Tokenize("Fang-tastic, Fun and Freaky!");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "fang");
  EXPECT_EQ(toks[1], "tastic");
  EXPECT_EQ(toks[4], "freaky");
}

TEST(TokenizerTest, KeepsDigits) {
  auto toks = Tokenize("superb3 movie 42");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "superb3");
  EXPECT_EQ(toks[2], "42");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("?!... --- ,,,").empty());
}

TEST(TokenizerTest, SeparatorMarkersAreStripped) {
  // The paper joins auxiliary reviews with "<sp>"; the brackets vanish.
  auto toks = Tokenize("great show <sp> very good");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2], "sp");
}

TEST(TokenizerTest, WhitespaceRuns) {
  auto toks = Tokenize("  a\t\tb \n c  ");
  ASSERT_EQ(toks.size(), 3u);
}

}  // namespace
}  // namespace text
}  // namespace omnimatch
