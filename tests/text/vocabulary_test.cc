#include "text/vocabulary.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace omnimatch {
namespace text {
namespace {

TEST(VocabularyTest, ReservedIds) {
  Vocabulary v;
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.TokenOf(Vocabulary::kPadId), "<pad>");
  EXPECT_EQ(v.TokenOf(Vocabulary::kUnkId), "<unk>");
}

TEST(VocabularyTest, AddTokenIsIdempotent) {
  Vocabulary v;
  int id1 = v.AddToken("vampire");
  int id2 = v.AddToken("vampire");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(v.size(), 3);
}

TEST(VocabularyTest, UnknownMapsToUnk) {
  Vocabulary v;
  v.AddToken("known");
  EXPECT_EQ(v.IdOf("unknown"), Vocabulary::kUnkId);
  EXPECT_NE(v.IdOf("known"), Vocabulary::kUnkId);
  EXPECT_TRUE(v.Contains("known"));
  EXPECT_FALSE(v.Contains("unknown"));
}

TEST(VocabularyTest, BuildFromDocumentsWithMinCount) {
  Vocabulary v;
  v.BuildFromDocuments({{"rare", "common"}, {"common"}}, /*min_count=*/2);
  EXPECT_TRUE(v.Contains("common"));
  EXPECT_FALSE(v.Contains("rare"));
}

TEST(VocabularyTest, BuildIsDeterministic) {
  Vocabulary a, b;
  std::vector<std::vector<std::string>> docs = {{"x", "y"}, {"z", "x"}};
  a.BuildFromDocuments(docs);
  b.BuildFromDocuments(docs);
  EXPECT_EQ(a.IdOf("x"), b.IdOf("x"));
  EXPECT_EQ(a.IdOf("z"), b.IdOf("z"));
}

TEST(VocabularyTest, EncodeMixedKnownUnknown) {
  Vocabulary v;
  v.AddToken("good");
  auto ids = v.Encode({"good", "mystery", "good"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(ids[1], Vocabulary::kUnkId);
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  Vocabulary v;
  v.AddToken("alpha");
  v.AddToken("beta");
  std::string path = testing::TempDir() + "/vocab_roundtrip.txt";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = Vocabulary::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), v.size());
  EXPECT_EQ(loaded.value().IdOf("beta"), v.IdOf("beta"));
  std::remove(path.c_str());
}

TEST(VocabularyTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/vocab_garbage.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("not-a-vocab\nfile\n", f);
  fclose(f);
  auto loaded = Vocabulary::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(VocabularyTest, LoadMissingFileFails) {
  auto loaded = Vocabulary::Load("/nonexistent/vocab.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace text
}  // namespace omnimatch
