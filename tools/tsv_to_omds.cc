// Converts a domain TSV file (the documented adoption format; see
// custom_dataset example and README) into an OMDS binary for the
// memory-mapped out-of-core data path, and verifies the conversion by
// mapping the result back and comparing every record and index against the
// TSV-loaded dataset.
//
//   ./tsv_to_omds --in=reviews.tsv --out=reviews.omds [--name=Books]
//                 [--no_verify]
//
// The reverse direction needs no tool: LoadDomainOmds + SaveDomainTsv.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/omds.h"

using namespace omnimatch;

namespace {

/// Record-for-record and index-for-index equality of the two backends.
bool DatasetsIdentical(const data::DomainDataset& a,
                       const data::DomainDataset& b) {
  if (a.num_reviews() != b.num_reviews()) return false;
  for (size_t i = 0; i < a.num_reviews(); ++i) {
    if (a.ReviewUser(i) != b.ReviewUser(i) ||
        a.ReviewItem(i) != b.ReviewItem(i) ||
        a.ReviewRating(i) != b.ReviewRating(i) ||
        a.ReviewSummary(i) != b.ReviewSummary(i) ||
        a.ReviewFullText(i) != b.ReviewFullText(i)) {
      return false;
    }
  }
  const data::CsrIndex<long long>& ia = a.item_rating_index();
  const data::CsrIndex<long long>& ib = b.item_rating_index();
  return a.users() == b.users() && a.items() == b.items() &&
         ia.keys() == ib.keys() && ia.offsets() == ib.offsets() &&
         ia.values() == ib.values();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  std::string in_path = flags.GetString("in", "");
  std::string out_path = flags.GetString("out", "");
  std::string name = flags.GetString("name", "domain");
  if (in_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: tsv_to_omds --in=reviews.tsv --out=reviews.omds "
                 "[--name=Books] [--no_verify]\n");
    return 2;
  }

  Result<data::DomainDataset> loaded = data::LoadDomainTsv(in_path, name);
  if (!loaded.ok()) {
    std::fprintf(stderr, "tsv_to_omds: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Status written = data::WriteDomainOmds(loaded.value(), out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "tsv_to_omds: %s\n", written.ToString().c_str());
    return 1;
  }

  if (!flags.GetBool("no_verify", false)) {
    Result<data::DomainDataset> mapped = data::LoadDomainOmds(out_path, name);
    if (!mapped.ok()) {
      std::fprintf(stderr, "tsv_to_omds: verification reload failed: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    if (!DatasetsIdentical(loaded.value(), mapped.value())) {
      std::fprintf(stderr,
                   "tsv_to_omds: verification FAILED — mapped dataset "
                   "differs from the TSV source\n");
      return 1;
    }
  }

  std::printf("tsv_to_omds: %zu records -> %s (verified=%s)\n",
              loaded.value().num_reviews(), out_path.c_str(),
              flags.GetBool("no_verify", false) ? "no" : "yes");
  return 0;
}
